package dir

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestInsertLookupDelete(t *testing.T) {
	d := New[int]()
	if _, ok := d.Lookup("a"); ok {
		t.Fatal("lookup in empty table succeeded")
	}
	if !d.Insert("a", 1) {
		t.Fatal("insert failed")
	}
	if d.Insert("a", 2) {
		t.Fatal("duplicate insert succeeded")
	}
	v, ok := d.Lookup("a")
	if !ok || v != 1 {
		t.Fatalf("lookup = %d %v", v, ok)
	}
	v, ok = d.Delete("a")
	if !ok || v != 1 {
		t.Fatalf("delete = %d %v", v, ok)
	}
	if _, ok := d.Delete("a"); ok {
		t.Fatal("double delete succeeded")
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestNamesSorted(t *testing.T) {
	d := New[int]()
	names := []string{"zeta", "alpha", "mid", "beta", "omega"}
	for i, n := range names {
		d.Insert(n, i)
	}
	got := d.Names()
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Names not sorted: %v", got)
	}
	if len(got) != len(names) {
		t.Fatalf("Names = %v", got)
	}
}

func TestCollisions(t *testing.T) {
	// More entries than buckets forces chains.
	d := New[int]()
	const n = 1000
	for i := 0; i < n; i++ {
		if !d.Insert(fmt.Sprintf("entry-%d", i), i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if d.Len() != n {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := d.Lookup(fmt.Sprintf("entry-%d", i))
		if !ok || v != i {
			t.Fatalf("lookup %d = %d %v", i, v, ok)
		}
	}
	// Delete odd entries, verify even ones survive.
	for i := 1; i < n; i += 2 {
		if _, ok := d.Delete(fmt.Sprintf("entry-%d", i)); !ok {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := 0; i < n; i++ {
		_, ok := d.Lookup(fmt.Sprintf("entry-%d", i))
		if want := i%2 == 0; ok != want {
			t.Fatalf("after deletes, lookup %d = %v", i, ok)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	d := New[int]()
	for i := 0; i < 10; i++ {
		d.Insert(fmt.Sprintf("n%d", i), i)
	}
	count := 0
	d.Range(func(string, int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Range visited %d, want 3", count)
	}
}

// TestPropertyVsModelMap drives the table and a plain map with the same
// random operation stream and checks they always agree.
func TestPropertyVsModelMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := New[int]()
		model := map[string]int{}
		for i := 0; i < 300; i++ {
			name := fmt.Sprintf("k%d", r.Intn(40))
			switch r.Intn(3) {
			case 0:
				_, inModel := model[name]
				ok := d.Insert(name, i)
				if ok == inModel {
					return false
				}
				if ok {
					model[name] = i
				}
			case 1:
				v, ok := d.Delete(name)
				mv, inModel := model[name]
				if ok != inModel || (ok && v != mv) {
					return false
				}
				delete(model, name)
			case 2:
				v, ok := d.Lookup(name)
				mv, inModel := model[name]
				if ok != inModel || (ok && v != mv) {
					return false
				}
			}
			if d.Len() != len(model) {
				return false
			}
		}
		want := make([]string, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		got := d.Names()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestLockFreeReaders races lock-free Lookups against a locked writer
// churning inserts and deletes. Run with -race: the RCU-hlist discipline
// (publish-before-insert, predecessor re-pointing on delete, immutable
// entries) must keep every read either before or after each mutation,
// and a Lookup must never observe a half-built entry.
func TestLockFreeReaders(t *testing.T) {
	tb := New[int]()
	var mu sync.Mutex // the "owning inode lock" of the contract
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for w := 0; w < 4; w++ {
		rg.Add(1)
		go func(w int) {
			defer rg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("k%d", (i+w)%32)
				if v, ok := tb.Lookup(name); ok && v < 0 {
					t.Errorf("lookup %s: torn value %d", name, v)
				}
			}
		}(w)
	}
	for i := 0; i < 20000; i++ {
		name := fmt.Sprintf("k%d", i%32)
		mu.Lock()
		if _, ok := tb.Lookup(name); ok {
			tb.Delete(name)
		} else {
			tb.Insert(name, i)
		}
		mu.Unlock()
	}
	close(stop)
	rg.Wait()
}

func TestDeleteRetire(t *testing.T) {
	d := New[int]()
	d.Insert("a", 7)
	var retired []int
	v, ok := d.DeleteRetire("a", func(val int) { retired = append(retired, val) })
	if !ok || v != 7 {
		t.Fatalf("DeleteRetire = %d %v, want 7 true", v, ok)
	}
	if len(retired) != 1 || retired[0] != 7 {
		t.Fatalf("retire callback got %v, want [7]", retired)
	}
	if _, ok := d.DeleteRetire("a", func(int) { t.Fatal("retire on miss") }); ok {
		t.Fatal("DeleteRetire of absent name succeeded")
	}
	d.Insert("b", 9)
	if v, ok := d.DeleteRetire("b", nil); !ok || v != 9 {
		t.Fatalf("DeleteRetire with nil retire = %d %v, want 9 true", v, ok)
	}
}
