package fuse

import (
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/fsapi"
	"repro/internal/memfs"
	"repro/internal/spec"
)

// TestDecodeNeverPanics: arbitrary bytes fed to the decoders must produce
// errors, never panics.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decodeRequest panicked on %v: %v", data, p)
				}
			}()
			decodeRequest(data)
		}()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decodeReply panicked on %v: %v", data, p)
				}
			}()
			decodeReply(data)
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeMutatedRoundTrips: take valid encodings, flip random bytes,
// and require clean error-or-success behaviour.
func TestDecodeMutatedRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	base := encodeRequest(&request{
		ID: 1, Op: spec.OpRename, Path: "/some/path", Path2: "/other",
		Off: 12345, Size: 99, Data: []byte("data payload"),
	})
	for i := 0; i < 500; i++ {
		mut := append([]byte(nil), base...)
		for j := 0; j < 1+r.Intn(4); j++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		if r.Intn(3) == 0 {
			mut = mut[:r.Intn(len(mut))]
		}
		decodeRequest(mut) // must not panic; error or garbage both fine
	}
}

// TestServerSurvivesGarbageConnection: a client writing junk must not
// take the server down; well-formed clients keep working.
func TestServerSurvivesGarbageConnection(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(memfs.New())
	go srv.Serve(lis)
	defer srv.Close()

	// Garbage connection.
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0x00, 0x00, 0x00, 0x04, 0xde, 0xad, 0xbe, 0xef})
	conn.Write([]byte("trailing nonsense that is not a frame"))
	conn.Close()

	// Oversized frame header.
	conn2, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn2.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	conn2.Close()

	time.Sleep(10 * time.Millisecond)

	// A real client still works.
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Mkdir(tctx, "/alive"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stat(tctx, "/alive"); err != nil {
		t.Fatal(err)
	}
}

// TestLargePayloadRoundTrip pushes a multi-megabyte write through the
// wire protocol.
func TestLargePayloadRoundTrip(t *testing.T) {
	client, srv := Pipe(memfs.New())
	defer srv.Close()
	defer client.Close()
	if err := client.Mknod(tctx, "/big"); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	n, err := client.Write(tctx, "/big", 0, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write = %d %v", n, err)
	}
	got, err := fsapi.ReadAll(tctx, client, "/big", 1<<20, 1<<20)
	if err != nil || len(got) != 1<<20 {
		t.Fatalf("read = %d %v", len(got), err)
	}
	for i := range got {
		if got[i] != payload[1<<20+i] {
			t.Fatalf("byte %d mismatched", i)
		}
	}
}

// TestServerCloseUnblocksClients: closing the server fails outstanding
// and future calls promptly.
func TestServerCloseUnblocksClients(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(memfs.New())
	go srv.Serve(lis)
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Mkdir(tctx, "/x"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	done := make(chan error, 1)
	go func() { done <- client.Mkdir(tctx, "/y") }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call after server close succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call after server close hung")
	}
}
