package fuse

import (
	"testing"

	"repro/internal/spec"
)

// FuzzDecodeRequest: arbitrary bytes never panic the request decoder, and
// whatever decodes successfully re-encodes and re-decodes to the same
// request.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(encodeRequest(&request{ID: 1, Op: 2, Path: "/a", Path2: "/b", Off: 3, Size: 4, Data: []byte("x")}))
	f.Add(encodeRequest(&request{ID: 7, Op: spec.OpReadv, Path: "/f",
		Extents: []extent{{Off: 0, Size: 4096}, {Off: 1 << 20, Size: 1}}}))
	f.Add(encodeRequest(&request{ID: 8, Op: spec.OpReaddirChunk, Path: "/d", Off: 512, Size: MaxDirNames}))
	f.Add(encodeRequest(&request{ID: 9, Op: 1, Tenant: "t", TimeoutNs: 1e9}))
	// Malformed chunk shapes: truncated extent table, absurd counts.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRequest(data)
		if err != nil {
			return
		}
		again, err := decodeRequest(encodeRequest(req))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.ID != req.ID || again.Op != req.Op || again.Path != req.Path ||
			again.Path2 != req.Path2 || again.Off != req.Off || again.Size != req.Size ||
			again.Tenant != req.Tenant || again.TimeoutNs != req.TimeoutNs ||
			string(again.Data) != string(req.Data) || len(again.Extents) != len(req.Extents) {
			t.Fatalf("round trip mismatch: %+v vs %+v", req, again)
		}
		for i := range req.Extents {
			if again.Extents[i] != req.Extents[i] {
				t.Fatalf("extent %d mismatch: %+v vs %+v", i, req.Extents[i], again.Extents[i])
			}
		}
	})
}

// FuzzDecodeReply mirrors FuzzDecodeRequest for the reply side.
func FuzzDecodeReply(f *testing.F) {
	body, _ := encodeReply(&reply{ID: 9, Errno: 2, Kind: 1, Size: 8, N: 3, Data: []byte("d"), Names: []string{"n"}})
	f.Add(body)
	// Readv reply: size table plus compacted payload.
	vbody, _ := encodeReply(&reply{ID: 10, Sizes: []int32{4096, 0, 12}, Data: []byte("payloadpayload")})
	f.Add(vbody)
	// Readdir chunk reply: names page plus continuation cursor in Size.
	cbody, _ := encodeReply(&reply{ID: 11, Size: 512, Names: []string{"a", "b", "c"}})
	f.Add(cbody)
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeReply(data)
		if err != nil {
			return
		}
		enc, err := encodeReply(rep)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := decodeReply(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Sizes) != len(rep.Sizes) || len(again.Names) != len(rep.Names) {
			t.Fatalf("round trip mismatch: %+v vs %+v", rep, again)
		}
		for i := range rep.Sizes {
			if again.Sizes[i] != rep.Sizes[i] {
				t.Fatalf("sizes[%d]: %d vs %d", i, rep.Sizes[i], again.Sizes[i])
			}
		}
	})
}
