package fuse

import "testing"

// FuzzDecodeRequest: arbitrary bytes never panic the request decoder, and
// whatever decodes successfully re-encodes and re-decodes to the same
// request.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(encodeRequest(&request{ID: 1, Op: 2, Path: "/a", Path2: "/b", Off: 3, Size: 4, Data: []byte("x")}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRequest(data)
		if err != nil {
			return
		}
		again, err := decodeRequest(encodeRequest(req))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.ID != req.ID || again.Op != req.Op || again.Path != req.Path ||
			again.Path2 != req.Path2 || again.Off != req.Off || again.Size != req.Size ||
			string(again.Data) != string(req.Data) {
			t.Fatalf("round trip mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzDecodeReply mirrors FuzzDecodeRequest for the reply side.
func FuzzDecodeReply(f *testing.F) {
	body, _ := encodeReply(&reply{ID: 9, Errno: 2, Kind: 1, Size: 8, N: 3, Data: []byte("d"), Names: []string{"n"}})
	f.Add(body)
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeReply(data)
		if err != nil {
			return
		}
		enc, err := encodeReply(rep)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := decodeReply(enc); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
