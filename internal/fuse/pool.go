package fuse

// Size-classed payload buffer pools. The wire path's hot allocations —
// the frame a request arrives in, the buffer a read fills, the header a
// reply is encoded into — all come from here and return here, so a
// steady-state server performs no per-request payload allocation. A
// handful of power-of-four classes keeps internal fragmentation bounded
// (a buffer wastes at most 3/4 of its class) without the pool sprawling.

import "sync"

// bufClasses are the pooled capacities. The largest covers MaxIOSize
// plus framing slack, so every capped request/reply frame fits a class;
// anything larger (only possible for hand-rolled frames near MaxPayload)
// falls through to the garbage collector.
var bufClasses = [...]int{
	1 << 8,           // 256 B: bare headers — stats, mknods, errno-only replies
	1 << 12,          // 4 KiB: small reads/writes, readdir pages of short names
	1 << 16,          // 64 KiB
	1 << 18,          // 256 KiB
	MaxIOSize + 4096, // full-size I/O plus header slack
}

var bufPools [len(bufClasses)]sync.Pool

// classFor returns the index of the smallest class holding n, or -1 when
// n exceeds every class.
func classFor(n int) int {
	for i, c := range bufClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// getBuf returns a length-n buffer, pooled when a class fits.
func getBuf(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		return make([]byte, n)
	}
	if p, _ := bufPools[ci].Get().(*[]byte); p != nil {
		return (*p)[:n]
	}
	return make([]byte, n, bufClasses[ci])
}

// putBuf returns a buffer obtained from getBuf. Buffers whose capacity
// matches no class exactly (foreign slices, oversized fall-throughs) are
// dropped for the collector; pooling them would poison the classes.
func putBuf(b []byte) {
	if b == nil {
		return
	}
	c := cap(b)
	for i := range bufClasses {
		if c == bufClasses[i] {
			b = b[:c]
			bufPools[i].Put(&b)
			return
		}
	}
}
