// Package fuse is the userspace-file-system dispatch layer of the
// reproduction: AtomFS in the paper runs under FUSE, with requests
// marshalled through the kernel to a userspace daemon. Here the daemon is
// a TCP (or in-process pipe) server speaking a compact binary protocol;
// the client side implements fsapi.FS, so applications are oblivious to
// whether they run against an in-process file system or a remote daemon
// (cmd/atomfsd).
//
// Like FUSE, the server processes requests from one connection
// concurrently and replies may be delivered out of order; request IDs
// correlate them. All encoding uses the standard library only.
//
// Wire format v2 (DESIGN.md §15): the bulk payload (a write's data, a
// read reply's bytes) is the LAST field of every message, so an encoder
// can emit the frame as [header vector][payload vector] without ever
// copying the payload into the frame buffer, and both ends drain their
// connection through a single writer goroutine that coalesces queued
// frames into one vectored net.Buffers write. Requests additionally carry
// an optional extent list (OpReadv) and replies an optional per-extent
// size table; both sit in the header, ahead of the payload.
package fuse

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/spec"
)

// MaxPayload bounds any single request/reply frame (64 MiB). This is the
// transport's framing sanity bound, not the per-operation I/O bound —
// see MaxIOSize.
const MaxPayload = 64 << 20

// MaxIOSize caps the data moved by one read, write, or readv request
// (1 MiB). Before this cap, a single OpRead with Size=MaxPayload forced
// the server to allocate 64 MiB per request — a hostile or buggy client
// could run the daemon out of memory with a handful of frames. The
// client chunks larger reads and writes transparently; the server
// rejects oversized requests with EINVAL and counts them in
// atomfs_fuse_rejected_total{reason}.
const MaxIOSize = 1 << 20

// MaxExtents bounds one OpReadv's extent list.
const MaxExtents = 256

// MaxDirNames bounds the names in one OpReaddirChunk reply frame, keeping
// directory listings of any size out of single unbounded frames.
const MaxDirNames = 512

// extent is one (offset, length) range of an OpReadv request.
type extent struct {
	Off  int64
	Size int32
}

// request is the wire form of one operation.
type request struct {
	ID    uint64
	Op    spec.Op
	Path  string
	Path2 string
	Off   int64
	Size  int32
	// TimeoutNs is the caller's remaining budget for this request in
	// nanoseconds; 0 means no deadline. It travels as a relative duration
	// (not an absolute time) so the two ends need no clock agreement; the
	// server re-anchors it on receipt. Cancellation of an already-sent
	// request is client-side only — like FUSE's interrupt handling, the
	// server finishes or times the request out on its own.
	TimeoutNs int64
	// Tenant labels the request for the server's admission control and
	// per-tenant accounting; empty means unlabelled (never throttled).
	Tenant string
	// Extents is OpReadv's extent list; nil for every other op.
	Extents []extent
	// Data is the bulk payload (write bytes). On the server it aliases the
	// pooled frame buffer the request arrived in; the dispatch loop
	// releases the frame once the handler returns.
	Data []byte

	// frame is the pooled buffer Data aliases (server side); released by
	// the dispatcher after handle() returns.
	frame []byte
}

// reply is the wire form of one result.
type reply struct {
	ID    uint64
	Errno int32
	Kind  uint8
	Size  int64
	N     int32
	Names []string
	// Sizes is OpReadv's per-extent byte-count table; the payload holds
	// the extents' bytes concatenated in order (each extent contributes
	// exactly Sizes[i] bytes, short reads compact).
	Sizes []int32
	// Data is the bulk payload. On the server it typically aliases a
	// pooled read buffer (released after the vectored write); on the
	// client it aliases the pooled frame the reply arrived in (released
	// once the caller has copied out).
	Data []byte

	// release, when non-nil, returns the pooled payload buffer after the
	// writer has flushed the frame (server side).
	release func()
	// frame is the pooled buffer Data aliases (client side).
	frame []byte
}

// writeFrame writes a length-prefixed frame in one buffer (slow path used
// by tests; the data path goes through frameWriter).
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > MaxPayload {
		return fmt.Errorf("fuse: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads a length-prefixed frame into a pooled buffer. The
// caller owns the returned slice and should hand it back with putBuf
// once nothing aliases it.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxPayload {
		return nil, fmt.Errorf("fuse: oversized frame (%d bytes)", n)
	}
	body := getBuf(int(n))
	if _, err := io.ReadFull(r, body); err != nil {
		putBuf(body)
		return nil, err
	}
	return body, nil
}

// enc is a tiny append-based encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}
func (e *enc) str(s string) { e.bytes([]byte(s)) }

// dec is the matching decoder.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("fuse: truncated message")
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }
func (d *dec) i32() int32 { return int32(d.u32()) }

// bytes returns a sub-slice ALIASING the decoder's buffer — callers that
// outlive the buffer must copy.
func (d *dec) bytes() []byte {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(len(d.b)) || n > MaxPayload {
		d.fail()
		return nil
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string { return string(d.bytes()) }

// appendRequest encodes r's header fields — everything including the
// payload length, but not the payload bytes themselves — onto b. The
// payload (r.Data) travels as its own vector right after.
func appendRequest(b []byte, r *request) []byte {
	e := enc{b: b}
	e.u64(r.ID)
	e.u8(uint8(r.Op))
	e.str(r.Path)
	e.str(r.Path2)
	e.i64(r.Off)
	e.i32(r.Size)
	e.i64(r.TimeoutNs)
	e.str(r.Tenant)
	e.u32(uint32(len(r.Extents)))
	for _, x := range r.Extents {
		e.i64(x.Off)
		e.i32(x.Size)
	}
	e.u32(uint32(len(r.Data))) // payload length; bytes follow as their own vector
	return e.b
}

// encodeRequest is the contiguous single-buffer form (tests, fuzzing).
func encodeRequest(r *request) []byte {
	b := appendRequest(nil, r)
	return append(b, r.Data...)
}

func decodeRequest(b []byte) (*request, error) {
	d := dec{b: b}
	r := &request{
		ID:    d.u64(),
		Op:    spec.Op(d.u8()),
		Path:  d.str(),
		Path2: d.str(),
		Off:   d.i64(),
		Size:  d.i32(),
	}
	r.TimeoutNs = d.i64()
	r.Tenant = d.str()
	nx := d.u32()
	if d.err == nil && uint64(nx)*12 > uint64(len(d.b)) {
		d.fail()
	}
	if d.err == nil && nx > 0 {
		r.Extents = make([]extent, 0, nx)
		for i := uint32(0); i < nx; i++ {
			r.Extents = append(r.Extents, extent{Off: d.i64(), Size: d.i32()})
		}
	}
	// Data is the frame's tail; it ALIASES b (the pooled frame) — the
	// dispatch loop releases the frame after the handler is done with it.
	r.Data = d.bytes()
	if d.err == nil && len(d.b) != 0 {
		d.err = fmt.Errorf("fuse: %d trailing bytes in request", len(d.b))
	}
	return r, d.err
}

// appendReply encodes r's header fields (payload length included, payload
// bytes excluded) onto b; r.Data follows as its own vector.
func appendReply(b []byte, r *reply) ([]byte, error) {
	if len(r.Names) > math.MaxInt32 {
		return nil, fmt.Errorf("fuse: too many names")
	}
	e := enc{b: b}
	e.u64(r.ID)
	e.i32(r.Errno)
	e.u8(r.Kind)
	e.i64(r.Size)
	e.i32(r.N)
	e.u32(uint32(len(r.Names)))
	for _, n := range r.Names {
		e.str(n)
	}
	e.u32(uint32(len(r.Sizes)))
	for _, s := range r.Sizes {
		e.i32(s)
	}
	e.u32(uint32(len(r.Data)))
	return e.b, nil
}

// encodeReply is the contiguous single-buffer form (tests, fuzzing).
func encodeReply(r *reply) ([]byte, error) {
	b, err := appendReply(nil, r)
	if err != nil {
		return nil, err
	}
	return append(b, r.Data...), nil
}

func decodeReply(b []byte) (*reply, error) {
	d := dec{b: b}
	r := &reply{
		ID:    d.u64(),
		Errno: d.i32(),
		Kind:  d.u8(),
		Size:  d.i64(),
		N:     d.i32(),
	}
	n := d.u32()
	if d.err == nil && uint64(n) > uint64(len(d.b)) {
		d.fail()
	}
	if d.err == nil && n > 0 {
		r.Names = make([]string, 0, n)
		for i := uint32(0); i < n; i++ {
			r.Names = append(r.Names, d.str())
		}
	}
	ns := d.u32()
	if d.err == nil && uint64(ns)*4 > uint64(len(d.b)) {
		d.fail()
	}
	if d.err == nil && ns > 0 {
		r.Sizes = make([]int32, 0, ns)
		for i := uint32(0); i < ns; i++ {
			r.Sizes = append(r.Sizes, d.i32())
		}
	}
	// Data is the frame's tail, ALIASING b (the pooled frame); the client
	// releases the frame once the caller has copied the bytes out.
	r.Data = d.bytes()
	if d.err == nil && len(d.b) != 0 {
		d.err = fmt.Errorf("fuse: %d trailing bytes in reply", len(d.b))
	}
	return r, d.err
}
