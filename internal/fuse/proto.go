// Package fuse is the userspace-file-system dispatch layer of the
// reproduction: AtomFS in the paper runs under FUSE, with requests
// marshalled through the kernel to a userspace daemon. Here the daemon is
// a TCP (or in-process pipe) server speaking a compact binary protocol;
// the client side implements fsapi.FS, so applications are oblivious to
// whether they run against an in-process file system or a remote daemon
// (cmd/atomfsd).
//
// Like FUSE, the server processes requests from one connection
// concurrently and replies may be delivered out of order; request IDs
// correlate them. All encoding uses the standard library only.
package fuse

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/spec"
)

// MaxPayload bounds any single request/reply body (64 MiB).
const MaxPayload = 64 << 20

// request is the wire form of one operation.
type request struct {
	ID    uint64
	Op    spec.Op
	Path  string
	Path2 string
	Off   int64
	Size  int32
	Data  []byte
	// TimeoutNs is the caller's remaining budget for this request in
	// nanoseconds; 0 means no deadline. It travels as a relative duration
	// (not an absolute time) so the two ends need no clock agreement; the
	// server re-anchors it on receipt. Cancellation of an already-sent
	// request is client-side only — like FUSE's interrupt handling, the
	// server finishes or times the request out on its own.
	TimeoutNs int64
	// Tenant labels the request for the server's admission control and
	// per-tenant accounting; empty means unlabelled (never throttled).
	Tenant string
}

// reply is the wire form of one result.
type reply struct {
	ID    uint64
	Errno int32
	Kind  uint8
	Size  int64
	N     int32
	Data  []byte
	Names []string
}

// writeFrame writes a length-prefixed frame.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > MaxPayload {
		return fmt.Errorf("fuse: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads a length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxPayload {
		return nil, fmt.Errorf("fuse: oversized frame (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// enc is a tiny append-based encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}
func (e *enc) str(s string) { e.bytes([]byte(s)) }

// dec is the matching decoder.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("fuse: truncated message")
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }
func (d *dec) i32() int32 { return int32(d.u32()) }

func (d *dec) bytes() []byte {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(len(d.b)) || n > MaxPayload {
		d.fail()
		return nil
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string { return string(d.bytes()) }

func encodeRequest(r *request) []byte {
	var e enc
	e.u64(r.ID)
	e.u8(uint8(r.Op))
	e.str(r.Path)
	e.str(r.Path2)
	e.i64(r.Off)
	e.i32(r.Size)
	e.bytes(r.Data)
	e.i64(r.TimeoutNs)
	e.str(r.Tenant)
	return e.b
}

func decodeRequest(b []byte) (*request, error) {
	d := dec{b: b}
	r := &request{
		ID:    d.u64(),
		Op:    spec.Op(d.u8()),
		Path:  d.str(),
		Path2: d.str(),
		Off:   d.i64(),
		Size:  d.i32(),
	}
	r.Data = append([]byte(nil), d.bytes()...)
	r.TimeoutNs = d.i64()
	// The tenant label is a suffix field: requests from clients that
	// predate it simply end here.
	if d.err == nil && len(d.b) != 0 {
		r.Tenant = d.str()
	}
	if d.err == nil && len(d.b) != 0 {
		d.err = fmt.Errorf("fuse: %d trailing bytes in request", len(d.b))
	}
	return r, d.err
}

func encodeReply(r *reply) ([]byte, error) {
	if len(r.Names) > math.MaxInt32 {
		return nil, fmt.Errorf("fuse: too many names")
	}
	var e enc
	e.u64(r.ID)
	e.i32(r.Errno)
	e.u8(r.Kind)
	e.i64(r.Size)
	e.i32(r.N)
	e.bytes(r.Data)
	e.u32(uint32(len(r.Names)))
	for _, n := range r.Names {
		e.str(n)
	}
	return e.b, nil
}

func decodeReply(b []byte) (*reply, error) {
	d := dec{b: b}
	r := &reply{
		ID:    d.u64(),
		Errno: d.i32(),
		Kind:  d.u8(),
		Size:  d.i64(),
		N:     d.i32(),
	}
	r.Data = append([]byte(nil), d.bytes()...)
	n := d.u32()
	if d.err == nil && uint64(n) > uint64(len(d.b)) {
		d.fail()
	}
	if d.err == nil && n > 0 {
		r.Names = make([]string, 0, n)
		for i := uint32(0); i < n; i++ {
			r.Names = append(r.Names, d.str())
		}
	}
	if d.err == nil && len(d.b) != 0 {
		d.err = fmt.Errorf("fuse: %d trailing bytes in reply", len(d.b))
	}
	return r, d.err
}
