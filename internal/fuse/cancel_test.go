package fuse

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/fsapi"
	"repro/internal/memfs"
	"repro/internal/spec"
)

// blockingFS wraps an inner FS; Read parks until the request context is
// done and reports the context error it observed on ctxErrs. Everything
// else passes through. It stands in for an operation stuck deep in
// traversal so the tests can observe what the dispatch layer does to its
// context.
type blockingFS struct {
	fsapi.FS
	ctxErrs chan error
}

func newBlockingFS() *blockingFS {
	inner := memfs.New()
	if err := inner.Mknod(tctx, "/slow"); err != nil {
		panic(err)
	}
	return &blockingFS{FS: inner, ctxErrs: make(chan error, 16)}
}

func (b *blockingFS) Read(ctx context.Context, path string, off int64, dst []byte) (int, error) {
	<-ctx.Done()
	b.ctxErrs <- ctx.Err()
	return 0, ctx.Err()
}

// TestWireDeadlineExpires: a client deadline travels the wire as a
// relative budget; when the backing operation overruns it, the caller
// gets context.DeadlineExceeded (locally or as the server's ETIMEDOUT
// errno — both restore the same sentinel).
func TestWireDeadlineExpires(t *testing.T) {
	bfs := newBlockingFS()
	client, srv := Pipe(bfs)
	defer srv.Close()
	defer client.Close()

	ctx, cancel := context.WithTimeout(tctx, 50*time.Millisecond)
	defer cancel()
	buf := make([]byte, 4)
	start := time.Now()
	_, err := client.Read(ctx, "/slow", 0, buf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("read past deadline = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	// The server-side request context expired too: the parked Read
	// observed it (the server does not leave abandoned handlers running).
	select {
	case err := <-bfs.ctxErrs:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("server-side ctx err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server-side handler never saw the deadline")
	}
}

// TestAdmissionRejectsExpired: a request whose wire deadline passes while
// it waits in the dispatch queue is rejected with ETIMEDOUT by the
// admission check — before it reaches the file system (and so before it
// can take a single inode lock). The client context carries no deadline,
// so the ETIMEDOUT seen by the caller can only be the server's reply.
func TestAdmissionRejectsExpired(t *testing.T) {
	bfs := newBlockingFS()
	srv := NewServer(bfs)
	srv.maxInflight = 1 // one slot: the blocked read saturates the queue
	defer srv.Close()
	c1, c2 := net.Pipe()
	srv.mu.Lock()
	srv.conns[c2] = nil
	srv.wg.Add(1)
	srv.mu.Unlock()
	go func() {
		defer srv.wg.Done()
		srv.ServeConn(c2)
	}()
	client := NewClient(c1)
	defer client.Close()

	// Occupy the only inflight slot with a read whose wire deadline frees
	// the slot for us after ~300ms (client-side cancellation does not
	// cross the wire; only the server-anchored deadline can unpark it).
	rctx, rcancel := context.WithTimeout(tctx, 300*time.Millisecond)
	defer rcancel()
	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 4)
		_, err := client.Read(rctx, "/slow", 0, buf)
		readDone <- err
	}()
	// Let the read reach the parked handler and hold the slot.
	time.Sleep(50 * time.Millisecond)

	// A second request with a tiny wire budget queues behind it; its
	// deadline is anchored when the server reads the frame, long before
	// the slot frees, so the admission check must reject it.
	stat := make(chan error, 1)
	go func() {
		_, err := client.call(tctx, &request{
			Op: spec.OpStat, Path: "/slow",
			TimeoutNs: int64(30 * time.Millisecond),
		}, nil)
		stat <- err
	}()

	if err := <-readDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slot-holding read = %v, want context.DeadlineExceeded", err)
	}
	select {
	case err := <-stat:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("queued-past-deadline stat = %v, want context.DeadlineExceeded (server ETIMEDOUT)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("doomed request never got its rejection")
	}
}

// TestConnectionCloseCancelsInflight: when the server shuts down, every
// in-flight request's context is cancelled — handlers parked in the file
// system unwind instead of leaking against a client that is gone.
func TestConnectionCloseCancelsInflight(t *testing.T) {
	bfs := newBlockingFS()
	client, srv := Pipe(bfs)
	defer client.Close()

	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 4)
		_, err := client.Read(tctx, "/slow", 0, buf)
		done <- err
	}()
	// Give the request time to reach the parked handler, then tear the
	// server down.
	time.Sleep(30 * time.Millisecond)
	srv.Close()

	select {
	case err := <-bfs.ctxErrs:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("server-side ctx err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight handler never saw the connection-close cancellation")
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read against a closed server succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("client call never returned after server close")
	}
}
