package fuse

// frameWriter drains one connection's outbound frames through a single
// goroutine. Callers (request handlers on the server, calling goroutines
// on the client) enqueue frames instead of taking a write mutex; the
// writer coalesces everything queued at the moment it wakes into ONE
// vectored net.Buffers write — header vectors and payload vectors
// interleaved, payloads never copied into a frame buffer. On a TCP or
// unix-socket connection that is one writev(2) for the whole batch, so a
// small-op storm that used to cost a syscall (and a mutex handoff) per
// reply costs a syscall per batch.
//
// The queue is bounded: a full queue makes enqueuers wait with their
// request context, so a slow-reading client turns into backpressure that
// feeds the existing deadline admission (a handler stuck on send() sees
// its deadline expire exactly like one stuck in the file system) instead
// of unbounded reply buffering.

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
)

// outFrame is one queued frame: hdr is the 4-byte length prefix plus the
// encoded header fields (pooled), payload the optional zero-copy tail,
// release the hook returning pooled buffers once the frame is flushed or
// dropped.
type outFrame struct {
	hdr     []byte
	payload []byte
	release func()
}

func (f *outFrame) done() {
	putBuf(f.hdr)
	if f.release != nil {
		f.release()
	}
}

// sendQueueDepth bounds frames queued per connection before enqueuers
// block (backpressure), and maxBatchFrames bounds how many frames one
// vectored write may coalesce.
const (
	sendQueueDepth = 256
	maxBatchFrames = 64
)

// errWriterClosed is returned by send on a dead connection.
var errWriterClosed = errors.New("fuse: connection writer closed")

type frameWriter struct {
	conn ioWriter

	ch   chan outFrame
	dead chan struct{} // closed when the writer must stop (conn error or teardown)
	once sync.Once
	wg   sync.WaitGroup

	// coalesce false degrades to one vectored write per frame — the
	// baseline the net bench suite measures the batching win against.
	coalesce bool

	// flushed, when non-nil, observes each completed write: the number of
	// frames it carried and its byte count.
	flushed func(frames, bytes int)
}

// ioWriter is the minimal connection surface the writer needs, so tests
// can substitute non-net writers.
type ioWriter = interface{ Write(p []byte) (int, error) }

func newFrameWriter(conn ioWriter, coalesce bool, flushed func(frames, bytes int)) *frameWriter {
	w := &frameWriter{
		conn:     conn,
		ch:       make(chan outFrame, sendQueueDepth),
		dead:     make(chan struct{}),
		coalesce: coalesce,
		flushed:  flushed,
	}
	w.wg.Add(1)
	go w.loop()
	return w
}

// send enqueues one frame. It blocks when the queue is full —
// backpressure — until space frees, the writer dies, or ctx expires; on
// any failure the frame's buffers are released and the frame is dropped
// (the connection is dying or the request has been abandoned).
func (w *frameWriter) send(ctx context.Context, f outFrame) error {
	select {
	case <-w.dead:
		f.done()
		return errWriterClosed
	default:
	}
	// Fast path: queue has room — enqueue even if ctx already expired. A
	// request that timed out still owes its caller the ETIMEDOUT reply;
	// ctx only bounds how long to WAIT for space, it does not veto an
	// immediate enqueue.
	select {
	case w.ch <- f:
		return nil
	default:
	}
	select {
	case w.ch <- f:
		return nil
	case <-w.dead:
		f.done()
		return errWriterClosed
	case <-ctx.Done():
		f.done()
		return ctx.Err()
	}
}

// stop kills the writer and drains anything still queued. Call only
// after every sender is done (the server waits for its inflight group,
// the client holds no concurrent senders once closed).
func (w *frameWriter) stop() {
	w.once.Do(func() { close(w.dead) })
	w.wg.Wait()
	for {
		select {
		case f := <-w.ch:
			f.done()
		default:
			return
		}
	}
}

// loop is the single writer goroutine: block for one frame, then sweep
// whatever else is queued (up to maxBatchFrames) into the same vectored
// write.
func (w *frameWriter) loop() {
	defer w.wg.Done()
	var bufs net.Buffers
	var batch [maxBatchFrames]outFrame
	for {
		var first outFrame
		select {
		case first = <-w.ch:
		case <-w.dead:
			return
		}
		n := 0
		batch[n] = first
		n++
		if w.coalesce {
			// One scheduler yield before the sweep: the send that woke this
			// goroutine usually races ahead of its siblings (a storm's other
			// handlers are runnable but haven't enqueued yet), and sweeping
			// immediately would find an empty queue and degrade to per-frame
			// writes. Yielding lets every runnable producer enqueue first —
			// a bounded, load-proportional batching delay (no timer).
			runtime.Gosched()
		fill:
			for n < maxBatchFrames {
				select {
				case f := <-w.ch:
					batch[n] = f
					n++
				default:
					break fill
				}
			}
		}
		bufs = bufs[:0]
		total := 0
		for i := 0; i < n; i++ {
			bufs = append(bufs, batch[i].hdr)
			total += len(batch[i].hdr)
			if len(batch[i].payload) > 0 {
				bufs = append(bufs, batch[i].payload)
				total += len(batch[i].payload)
			}
		}
		_, err := bufs.WriteTo(w.conn)
		for i := 0; i < n; i++ {
			batch[i].done()
		}
		if err != nil {
			// The connection is broken: stop accepting, release stragglers.
			// The read loop notices the same breakage and tears the
			// connection down; senders unblock via the dead channel.
			w.once.Do(func() { close(w.dead) })
			return
		}
		if w.flushed != nil {
			w.flushed(n, total)
		}
	}
}

// requestFrame builds a pooled outFrame for req: the header (length
// prefix included) in a pooled buffer, the payload vectored zero-copy.
// payload must stay immutable until the writer flushes the frame.
func requestFrame(req *request, payload []byte, release func()) outFrame {
	est := 68 + len(req.Path) + len(req.Path2) + len(req.Tenant) + 12*len(req.Extents)
	hdr := getBuf(est)[:0]
	hdr = append(hdr, 0, 0, 0, 0)
	req.Data = nil // header encodes the payload length explicitly below
	hdr = appendRequest(hdr, req)
	// Patch the payload length (last u32 of the header) and frame length.
	putU32(hdr[len(hdr)-4:], uint32(len(payload)))
	putU32(hdr[:4], uint32(len(hdr)-4+len(payload)))
	return outFrame{hdr: hdr, payload: payload, release: release}
}

// replyFrame mirrors requestFrame for replies.
func replyFrame(rep *reply) (outFrame, error) {
	payload := rep.Data
	rep.Data = nil
	est := 48 + 4*len(rep.Sizes)
	for _, n := range rep.Names {
		est += 4 + len(n)
	}
	hdr := getBuf(est)[:0]
	hdr = append(hdr, 0, 0, 0, 0)
	hdr, err := appendReply(hdr, rep)
	if err != nil {
		putBuf(hdr)
		return outFrame{}, err
	}
	putU32(hdr[len(hdr)-4:], uint32(len(payload)))
	putU32(hdr[:4], uint32(len(hdr)-4+len(payload)))
	return outFrame{hdr: hdr, payload: payload, release: rep.release}, nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
