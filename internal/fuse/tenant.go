package fuse

// Multi-tenant admission control for the daemon loop. Each request may
// carry a tenant label on the wire; the server maps labels to token
// buckets (SetQuota) and paces each tenant to its configured rate before
// the request can compete for an inflight slot, so one tenant flooding
// the daemon cannot starve the others — the FUSE analogue of per-cgroup
// request throttling.
//
// Admission is deadline-keyed: a waiter reserves the next token slot in
// its tenant's bucket (reservations keep per-tenant FIFO order and let
// the bucket run a bounded debt), and a request whose wire deadline
// would expire before its reserved slot is rejected with ETIMEDOUT
// immediately instead of queueing — a doomed request must not consume a
// queue slot just to discover it is late. Queue overflow beyond
// MaxQueue rejects the same way.

import (
	"context"
	"sync"
	"time"
)

// QuotaConfig is one tenant's admission budget.
type QuotaConfig struct {
	// Rate is the sustained admission rate in requests per second.
	Rate float64
	// Burst is the bucket capacity in requests; 0 defaults to Rate
	// (one second of burst), values below 1 are raised to 1.
	Burst float64
	// MaxQueue bounds how many requests may wait for a token at once;
	// 0 defaults to DefaultMaxQueue.
	MaxQueue int
}

// DefaultMaxQueue is the per-tenant admission queue bound when
// QuotaConfig.MaxQueue is zero.
const DefaultMaxQueue = 128

type tenantBucket struct {
	mu       sync.Mutex
	rate     float64
	burst    float64
	tokens   float64
	last     time.Time
	queued   int
	maxQueue int
}

// SetQuota installs (or replaces) the admission quota for tenant.
// Requests with no matching quota — including the empty tenant — are
// admitted without pacing. Call before serving; quotas are read
// concurrently by every connection.
func (s *Server) SetQuota(tenant string, q QuotaConfig) {
	if q.Rate <= 0 {
		s.quotaMu.Lock()
		delete(s.quotas, tenant)
		s.quotaMu.Unlock()
		return
	}
	burst := q.Burst
	if burst == 0 {
		burst = q.Rate
	}
	if burst < 1 {
		burst = 1
	}
	maxQ := q.MaxQueue
	if maxQ == 0 {
		maxQ = DefaultMaxQueue
	}
	b := &tenantBucket{rate: q.Rate, burst: burst, tokens: burst, last: time.Now(), maxQueue: maxQ}
	s.quotaMu.Lock()
	if s.quotas == nil {
		s.quotas = map[string]*tenantBucket{}
	}
	s.quotas[tenant] = b
	s.quotaMu.Unlock()
}

// admit paces req by its tenant's bucket. It returns nil when the request
// may proceed and the rejection error (mapped to ETIMEDOUT on the wire)
// when it must not. ctx carries the request's wire deadline.
func (s *Server) admit(ctx context.Context, req *request) error {
	s.quotaMu.RLock()
	b := s.quotas[req.Tenant]
	s.quotaMu.RUnlock()
	if b == nil {
		return nil
	}

	b.mu.Lock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		b.mu.Unlock()
		if p := s.obs; p != nil {
			p.tenant(req.Tenant).admitted.Inc(req.ID)
		}
		return nil
	}
	// No token: reserve the next slot (debt keeps waiters FIFO within the
	// tenant) unless the queue is full or the deadline rules the wait out.
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if b.queued >= b.maxQueue {
		b.mu.Unlock()
		s.rejectTenant(req)
		return context.DeadlineExceeded
	}
	if dl, ok := ctx.Deadline(); ok && now.Add(wait).After(dl) {
		b.mu.Unlock()
		s.rejectTenant(req)
		return context.DeadlineExceeded
	}
	b.tokens--
	b.queued++
	b.mu.Unlock()
	if p := s.obs; p != nil {
		p.tenant(req.Tenant).queued.Inc(req.ID)
	}

	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		b.mu.Lock()
		b.queued--
		b.mu.Unlock()
		if p := s.obs; p != nil {
			to := p.tenant(req.Tenant)
			to.queued.Dec(req.ID)
			to.throttleNs.Observe(req.ID, int64(wait))
			to.admitted.Inc(req.ID)
		}
		return nil
	case <-ctx.Done():
		// Hand the unused reservation back so later waiters move up.
		b.mu.Lock()
		b.tokens++
		b.queued--
		b.mu.Unlock()
		if p := s.obs; p != nil {
			to := p.tenant(req.Tenant)
			to.queued.Dec(req.ID)
			to.rejected.Inc(req.ID)
		}
		return ctx.Err()
	}
}

func (s *Server) rejectTenant(req *request) {
	if p := s.obs; p != nil {
		p.tenant(req.Tenant).rejected.Inc(req.ID)
	}
}
