package fuse

// Tests for the v2 batch wire operations (cursor-paged readdir, vectored
// readv), the server's wire-cap rejections, and teardown of a connection
// with a batch in flight.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/atomfs"
	"repro/internal/fserr"
	"repro/internal/obs"
	"repro/internal/spec"
)

// TestReaddirPaginates lists a directory holding more entries than one
// OpReaddirChunk frame may carry and checks the client reassembles the
// complete sorted listing across pages.
func TestReaddirPaginates(t *testing.T) {
	ctx := context.Background()
	client, srv := Pipe(atomfs.New(atomfs.WithFastPath()))
	defer srv.Close()
	defer client.Close()
	if err := client.Mkdir(ctx, "/big"); err != nil {
		t.Fatal(err)
	}
	const entries = MaxDirNames*2 + 37 // three pages, last one partial
	want := make([]string, 0, entries)
	for i := 0; i < entries; i++ {
		name := fmt.Sprintf("f%05d", i)
		if err := client.Mknod(ctx, "/big/"+name); err != nil {
			t.Fatal(err)
		}
		want = append(want, name)
	}
	got, err := client.Readdir(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d names, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("name %d: got %q want %q", i, got[i], want[i])
		}
	}
}

// TestReadvWire checks multi-extent reads over the wire: full extents,
// short reads at EOF, and overlapping extents.
func TestReadvWire(t *testing.T) {
	ctx := context.Background()
	client, srv := Pipe(atomfs.New(atomfs.WithFastPath()))
	defer srv.Close()
	defer client.Close()
	if err := client.Mknod(ctx, "/f"); err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 10000)
	for i := range content {
		content[i] = byte('a' + i%26)
	}
	if _, err := client.Write(ctx, "/f", 0, content); err != nil {
		t.Fatal(err)
	}
	offs := []int64{0, 4096, 9990, 100}
	dsts := [][]byte{make([]byte, 100), make([]byte, 200), make([]byte, 100), make([]byte, 50)}
	ns, err := client.Readv(ctx, "/f", offs, dsts)
	if err != nil {
		t.Fatal(err)
	}
	wantNs := []int{100, 200, 10, 50} // third extent is cut by EOF
	for i := range offs {
		if ns[i] != wantNs[i] {
			t.Fatalf("extent %d: n=%d want %d", i, ns[i], wantNs[i])
		}
		if string(dsts[i][:ns[i]]) != string(content[offs[i]:offs[i]+int64(ns[i])]) {
			t.Fatalf("extent %d: content mismatch", i)
		}
	}

	// Zero extents is a no-op, not a wire round trip.
	if ns, err := client.Readv(ctx, "/f", nil, nil); err != nil || ns != nil {
		t.Fatalf("empty readv: %v, %v", ns, err)
	}
	// Mismatched offs/dsts lengths are a client-side EINVAL.
	if _, err := client.Readv(ctx, "/f", []int64{0}, nil); err != fserr.ErrInvalid {
		t.Fatalf("mismatched readv: %v, want ErrInvalid", err)
	}
}

// TestServerRejectsWireCaps drives raw over-cap requests through the
// client's call path and checks each is refused with EINVAL and counted
// under its reason in atomfs_fuse_rejected_total.
func TestServerRejectsWireCaps(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	srv := NewServer(atomfs.New(atomfs.WithFastPath()))
	srv.SetObs(reg)
	c1, c2 := net.Pipe()
	go srv.ServeConn(c2)
	defer srv.Close()
	client := NewClient(c1)
	defer client.Close()
	if err := client.Mknod(ctx, "/f"); err != nil {
		t.Fatal(err)
	}

	rejected := func(reason string) uint64 {
		return reg.Counter(`atomfs_fuse_rejected_total{reason="` + reason + `"}`).Value()
	}

	// Oversized read size.
	rep, err := client.call(ctx, &request{Op: spec.OpRead, Path: "/f", Size: MaxIOSize + 1}, nil)
	rep.done()
	if !errors.Is(err, fserr.ErrInvalid) {
		t.Fatalf("oversized read: %v, want EINVAL", err)
	}
	if rejected("size") != 1 {
		t.Fatalf("reason=size count = %d, want 1", rejected("size"))
	}

	// Too many readv extents.
	exts := make([]extent, MaxExtents+1)
	for i := range exts {
		exts[i] = extent{Off: 0, Size: 1}
	}
	rep, err = client.call(ctx, &request{Op: spec.OpReadv, Path: "/f", Extents: exts}, nil)
	rep.done()
	if err == nil {
		t.Fatal("oversized extent list must be rejected")
	}
	if rejected("extents") != 1 {
		t.Fatalf("reason=extents count = %d, want 1", rejected("extents"))
	}

	// Readv total over MaxIOSize.
	exts = []extent{{Off: 0, Size: MaxIOSize}, {Off: 0, Size: 1}}
	rep, err = client.call(ctx, &request{Op: spec.OpReadv, Path: "/f", Extents: exts}, nil)
	rep.done()
	if err == nil {
		t.Fatal("over-total extent list must be rejected")
	}
	if rejected("extents") != 2 {
		t.Fatalf("reason=extents count = %d, want 2", rejected("extents"))
	}

	// The connection survives rejections: a well-formed request still works.
	if _, err := client.Stat(ctx, "/f"); err != nil {
		t.Fatalf("stat after rejections: %v", err)
	}
}

// TestClientCloseMidBatch tears the connection down while paginated
// readdir and readv batches are in flight: every call must return an
// error promptly and no goroutine may leak.
func TestClientCloseMidBatch(t *testing.T) {
	ctx := context.Background()
	before := runtime.NumGoroutine()
	client, srv := Pipe(atomfs.New(atomfs.WithFastPath()))
	if err := client.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxDirNames+10; i++ { // force multi-page listings
		if err := client.Mknod(ctx, fmt.Sprintf("/d/f%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Mknod(ctx, "/d/data"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(ctx, "/d/data", 0, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errsCh := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				var err error
				if g%2 == 0 {
					_, err = client.Readdir(ctx, "/d")
				} else {
					offs := []int64{0, 8192, 16384, 32768}
					dsts := [][]byte{make([]byte, 4096), make([]byte, 4096), make([]byte, 4096), make([]byte, 4096)}
					_, err = client.Readv(ctx, "/d/data", offs, dsts)
				}
				if err != nil {
					errsCh <- err
					return
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond) // let batches get airborne
	client.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch callers did not unblock after Close")
	}
	srv.Close()

	// Every caller saw an error (the pipe died mid-batch).
	if len(errsCh) != 16 {
		t.Fatalf("%d callers reported errors, want 16", len(errsCh))
	}

	// Goroutines drain back to the baseline (client read loop, writer
	// goroutines, server handlers all exit).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
