package fuse

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/spec"
)

// Server dispatches protocol requests to a file system. Each request runs
// on its own goroutine (bounded by a semaphore), matching FUSE's
// multi-threaded daemon loop, so independent operations proceed in
// parallel even over one connection.
//
// Replies do not contend on a write mutex: every connection owns a
// bounded reply queue drained by a single writer goroutine that coalesces
// queued replies into one vectored net.Buffers write (DESIGN.md §15).
// Read payloads come from size-classed pools and ride the vectored write
// without ever being copied into a frame buffer; the writer returns them
// to the pool after the flush. A full reply queue blocks the handler with
// its request context — backpressure from a slow-reading client feeds the
// same deadline admission as a slow file system.
//
// Context plumbing: every connection gets a context cancelled when the
// connection (or the server) closes, and every request carrying a wire
// deadline gets a per-request sub-context. The request context reaches the
// file system, so a dropped connection aborts its in-flight traversals at
// their next cancellation poll instead of leaving them to run to
// completion against a client that is gone. Requests whose deadline has
// already passed when they clear the admission semaphore are rejected with
// ETIMEDOUT before touching the file system at all — a doomed request
// must not be allowed to acquire inode locks just to discover it is late.
type Server struct {
	fs fsapi.FS
	// MaxInflight bounds concurrent requests per connection.
	maxInflight int
	// coalesce false degrades the per-connection writer to one write per
	// frame — the measured baseline for the batching win (SetCoalesce).
	coalesce bool
	// obs, when non-nil, instruments the dispatch loop (see SetObs).
	obs *srvObs

	// quotas holds per-tenant admission buckets (see SetQuota).
	quotaMu sync.RWMutex
	quotas  map[string]*tenantBucket

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	conns  map[net.Conn]func() // conn -> its context cancel
	wg     sync.WaitGroup
}

// NewServer creates a server over fs.
func NewServer(fs fsapi.FS) *Server {
	return &Server{fs: fs, maxInflight: 64, coalesce: true, conns: map[net.Conn]func(){}}
}

// SetCoalesce toggles reply coalescing (on by default). Off, the writer
// goroutine still serializes replies but issues one vectored write per
// frame — the per-frame baseline cmd/benchjson's net suite measures the
// coalescing speedup against. Call before serving.
func (s *Server) SetCoalesce(on bool) { s.coalesce = on }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = nil
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops the server and its connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.lis != nil {
		s.lis.Close()
	}
	for c, cancel := range s.conns {
		c.Close()
		if cancel != nil {
			cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ServeConn processes one connection synchronously (exported so tests and
// in-process transports can drive a net.Pipe end directly).
func (s *Server) ServeConn(conn net.Conn) {
	// The connection is the root of this request tree; there is no caller
	// context to inherit from. ctxlint:allow
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer conn.Close()
	s.mu.Lock()
	s.conns[conn] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	p := s.obs
	if p != nil {
		p.conns.Inc(0)
		defer p.conns.Dec(0)
	}
	var flushed func(frames, bytes int)
	if p != nil {
		flushed = p.flush
	}
	w := newFrameWriter(conn, s.coalesce, flushed)
	defer w.stop()
	// Buffered reads are the receive half of coalescing: a batch the peer
	// wrote with one writev drains here in one read syscall instead of
	// two per frame.
	br := bufio.NewReaderSize(conn, 64<<10)
	var inflight sync.WaitGroup
	sem := make(chan struct{}, s.maxInflight)
	for {
		frame, err := readFrame(br)
		if err != nil {
			break // EOF or broken connection
		}
		req, err := decodeRequest(frame)
		if err != nil {
			putBuf(frame)
			break // protocol violation; drop the connection
		}
		req.frame = frame
		// Anchor the wire deadline before the request can queue on the
		// semaphore: time spent waiting for an inflight slot counts
		// against the caller's budget, exactly like time spent in FUSE's
		// pending queue.
		reqCtx, reqCancel := ctx, func() {}
		if req.TimeoutNs > 0 {
			reqCtx, reqCancel = context.WithTimeout(ctx, time.Duration(req.TimeoutNs))
		}
		var queuedNs int64
		if p != nil {
			queuedNs = p.queueReq(req, len(frame))
		}
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			defer reqCancel()
			// Per-tenant admission runs BEFORE the inflight semaphore: a
			// throttled tenant waits (or is rejected) without holding a
			// dispatch slot the other tenants could use.
			if err := s.admit(reqCtx, req); err != nil {
				if p != nil {
					p.dispatchReq(req)
				}
				s.reply(reqCtx, w, req, &reply{ID: req.ID, Errno: fserr.Errno(err)}, queuedNs)
				putBuf(req.frame)
				return
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			if p != nil {
				p.dispatchReq(req)
			}
			var rep *reply
			if err := reqCtx.Err(); err != nil {
				// Admission check: the deadline expired (or the connection
				// died) while the request sat in the queue. Reject it here,
				// before it can hold any inode lock.
				rep = &reply{ID: req.ID, Errno: fserr.Errno(err)}
			} else {
				rep = s.handle(reqCtx, req)
			}
			// The handler is done with the request's payload; the reply
			// owns only pooled buffers of its own.
			putBuf(req.frame)
			req.frame = nil
			s.reply(reqCtx, w, req, rep, queuedNs)
		}()
	}
	cancel() // connection gone: abort every in-flight request
	inflight.Wait()
}

// reply encodes rep and enqueues it on the connection writer, recording
// the request's lifecycle with the obs pack. Failures release the reply's
// pooled buffers and are otherwise ignored: the connection is dying (the
// read loop handles teardown) or the request's deadline expired while the
// queue was full (backpressure — the client has already given up).
func (s *Server) reply(ctx context.Context, w *frameWriter, req *request, rep *reply, queuedNs int64) {
	p := s.obs
	f, err := replyFrame(rep)
	if err != nil {
		if rep.release != nil {
			rep.release()
		}
		if p != nil {
			p.inflight.Dec(req.ID)
		}
		return
	}
	n := len(f.hdr) - 4 + len(f.payload)
	if err := w.send(ctx, f); err != nil {
		if p != nil {
			p.dropReq(req)
		}
		return
	}
	if p != nil {
		p.replyReq(req, queuedNs, n)
	}
}

// handle dispatches one request to the file system, enforcing the wire
// I/O caps first: req.Size and req.Data are bounded by MaxIOSize (a
// single OpRead may no longer demand a MaxPayload-sized allocation), and
// readv extent lists by MaxExtents/MaxIOSize total. Rejections return
// EINVAL and count in atomfs_fuse_rejected_total{reason}.
func (s *Server) handle(ctx context.Context, req *request) *reply {
	rep := &reply{ID: req.ID}
	fail := func(err error) *reply {
		rep.Errno = fserr.Errno(err)
		return rep
	}
	reject := func(reason string) *reply {
		if p := s.obs; p != nil {
			p.reject(reason, req.ID)
		}
		return fail(fserr.ErrInvalid)
	}
	if len(req.Data) > MaxIOSize {
		return reject("data")
	}
	switch req.Op {
	case spec.OpMknod:
		if err := s.fs.Mknod(ctx, req.Path); err != nil {
			return fail(err)
		}
	case spec.OpMkdir:
		if err := s.fs.Mkdir(ctx, req.Path); err != nil {
			return fail(err)
		}
	case spec.OpRmdir:
		if err := s.fs.Rmdir(ctx, req.Path); err != nil {
			return fail(err)
		}
	case spec.OpUnlink:
		if err := s.fs.Unlink(ctx, req.Path); err != nil {
			return fail(err)
		}
	case spec.OpRename:
		if err := s.fs.Rename(ctx, req.Path, req.Path2); err != nil {
			return fail(err)
		}
	case spec.OpStat:
		info, err := s.fs.Stat(ctx, req.Path)
		if err != nil {
			return fail(err)
		}
		rep.Kind = uint8(info.Kind)
		rep.Size = info.Size
	case spec.OpRead:
		if req.Size < 0 || req.Size > MaxIOSize {
			return reject("size")
		}
		dst := getBuf(int(req.Size))
		n, err := s.fs.Read(ctx, req.Path, req.Off, dst)
		if err != nil {
			putBuf(dst)
			return fail(err)
		}
		rep.Data = dst[:n]
		rep.N = int32(n)
		rep.release = func() { putBuf(dst) }
	case spec.OpReadv:
		return s.handleReadv(ctx, req, rep, reject)
	case spec.OpWrite:
		n, err := s.fs.Write(ctx, req.Path, req.Off, req.Data)
		if err != nil {
			return fail(err)
		}
		rep.N = int32(n)
	case spec.OpTruncate:
		if err := s.fs.Truncate(ctx, req.Path, req.Off); err != nil {
			return fail(err)
		}
	case spec.OpReaddir:
		names, err := s.fs.Readdir(ctx, req.Path)
		if err != nil {
			return fail(err)
		}
		if len(names) > MaxDirNames {
			// An unbounded directory no longer fits one frame; the batch
			// clients never hit this (they paginate), and a legacy-style
			// whole-directory request on a huge directory is the exact
			// unbounded-frame case v2 retires.
			return reject("names")
		}
		rep.Names = names
	case spec.OpReaddirChunk:
		// Cursor-based pagination: Off is the index into the sorted name
		// list, Size the page bound (clamped to MaxDirNames). The reply
		// carries the page in Names and the next cursor in Size, -1 when
		// the listing is complete. Like POSIX readdir, pagination under
		// concurrent mutation is best-effort: the cursor indexes whatever
		// sorted snapshot each page's Readdir produced.
		if req.Off < 0 {
			return reject("cursor")
		}
		limit := int(req.Size)
		if limit <= 0 || limit > MaxDirNames {
			limit = MaxDirNames
		}
		names, err := s.fs.Readdir(ctx, req.Path)
		if err != nil {
			return fail(err)
		}
		start := int(req.Off)
		if start > len(names) {
			start = len(names)
		}
		end := start + limit
		if end > len(names) {
			end = len(names)
		}
		rep.Names = names[start:end]
		if end >= len(names) {
			rep.Size = -1
		} else {
			rep.Size = int64(end)
		}
	default:
		return fail(fserr.ErrInvalid)
	}
	return rep
}

// handleReadv serves a multi-extent read: one pooled buffer holds every
// extent's bytes back to back (short reads compact), the per-extent
// counts travel in the reply's size table, and the whole payload rides
// the vectored write zero-copy.
func (s *Server) handleReadv(ctx context.Context, req *request, rep *reply, reject func(string) *reply) *reply {
	if len(req.Extents) == 0 || len(req.Extents) > MaxExtents {
		return reject("extents")
	}
	total := 0
	for _, x := range req.Extents {
		if x.Size < 0 || int(x.Size) > MaxIOSize {
			return reject("extents")
		}
		total += int(x.Size)
		if total > MaxIOSize {
			return reject("extents")
		}
	}
	buf := getBuf(total)
	sizes := make([]int32, len(req.Extents))
	filled := 0
	for i, x := range req.Extents {
		n, err := s.fs.Read(ctx, req.Path, x.Off, buf[filled:filled+int(x.Size)])
		if err != nil {
			putBuf(buf)
			rep.Errno = fserr.Errno(err)
			return rep
		}
		// Compact: the next extent starts right after this one's bytes.
		copy(buf[filled:], buf[filled:filled+n])
		sizes[i] = int32(n)
		filled += n
	}
	rep.Data = buf[:filled]
	rep.N = int32(filled)
	rep.Sizes = sizes
	rep.release = func() { putBuf(buf) }
	return rep
}

// ErrClientClosed is returned by calls on a closed client.
var ErrClientClosed = errors.New("fuse: client closed")

// Client implements fsapi.FS over a protocol connection. Requests from
// concurrent goroutines are enqueued on a single coalescing writer (the
// mirror of the server's reply path), so a calling storm costs one
// vectored write per batch instead of one write syscall per call. Reads
// and writes larger than MaxIOSize are chunked transparently; Readdir
// paginates with OpReaddirChunk so no listing produces an unbounded
// frame.
type Client struct {
	conn net.Conn
	w    *frameWriter
	// tenant labels every request for the server's admission control.
	tenant string

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *reply
	err     error
	done    chan struct{}
}

var _ fsapi.FS = (*Client)(nil)

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, pending: map[uint64]chan *reply{}, done: make(chan struct{})}
	c.w = newFrameWriter(conn, true, nil)
	go c.readLoop()
	return c
}

// Dial connects to a TCP server address.
func Dial(addr string) (*Client, error) { return DialNetwork("tcp", addr) }

// DialNetwork connects over an arbitrary network ("tcp", "unix", ...).
func DialNetwork(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Name identifies the implementation in benchmark tables.
func (c *Client) Name() string { return "fuse-client" }

// SetTenant labels all subsequent requests with the given tenant for the
// server's admission control and per-tenant accounting. Call before
// issuing operations; the label is read without synchronization.
func (c *Client) SetTenant(tenant string) { c.tenant = tenant }

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	// The writer can be stopped as soon as the connection is gone: queued
	// frames can never be delivered. stop() drains and releases them.
	c.w.stop()
	return err
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var loopErr error
	for {
		frame, err := readFrame(br)
		if err != nil {
			loopErr = err
			break
		}
		rep, err := decodeReply(frame)
		if err != nil {
			putBuf(frame)
			loopErr = err
			break
		}
		rep.frame = frame
		c.mu.Lock()
		ch := c.pending[rep.ID]
		delete(c.pending, rep.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- rep
		} else {
			// Abandoned call (cancelled); nothing will read this reply.
			putBuf(frame)
		}
	}
	if loopErr == nil || errors.Is(loopErr, io.EOF) {
		loopErr = ErrClientClosed
	}
	c.mu.Lock()
	c.err = loopErr
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	close(c.done)
}

// call sends req and waits for its reply or for ctx. A context deadline is
// forwarded on the wire as the remaining budget, so the server can reject
// or abort the request on its side too; cancellation while waiting
// abandons the reply locally (the reply is discarded when it arrives —
// the wire protocol has no interrupt message, mirroring the fact that a
// FUSE INTERRUPT is advisory anyway).
//
// data is the request payload; it is copied into a pooled buffer at
// enqueue time so the caller's slice is never aliased past the call (a
// cancelled caller may reuse it while the frame is still queued).
//
// The returned reply's Data aliases a pooled frame; the caller MUST
// finish with it and then call rep.done() (methods that return raw
// results to the user copy first).
func (c *Client) call(ctx context.Context, req *request, data []byte) (*reply, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req.Tenant = c.tenant
	if dl, ok := ctx.Deadline(); ok {
		budget := time.Until(dl)
		if budget <= 0 {
			return nil, context.DeadlineExceeded
		}
		req.TimeoutNs = int64(budget)
	}
	ch := make(chan *reply, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	var payload []byte
	var release func()
	if len(data) > 0 {
		buf := getBuf(len(data))
		copy(buf, data)
		payload = buf
		release = func() { putBuf(buf) }
	}
	if err := c.w.send(ctx, requestFrame(req, payload, release)); err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		if errors.Is(err, errWriterClosed) {
			err = ErrClientClosed
		}
		return nil, err
	}
	select {
	case rep, ok := <-ch:
		if !ok {
			return nil, ErrClientClosed
		}
		if rep.Errno != 0 {
			err := fserr.FromErrno(rep.Errno)
			rep.done()
			return nil, err
		}
		return rep, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// done releases the pooled frame backing the reply's Data. Safe on nil.
func (r *reply) done() {
	if r == nil {
		return
	}
	if r.frame != nil {
		putBuf(r.frame)
		r.frame = nil
		r.Data = nil
	}
}

// Mknod creates an empty file.
func (c *Client) Mknod(ctx context.Context, path string) error {
	rep, err := c.call(ctx, &request{Op: spec.OpMknod, Path: path}, nil)
	rep.done()
	return err
}

// Mkdir creates an empty directory.
func (c *Client) Mkdir(ctx context.Context, path string) error {
	rep, err := c.call(ctx, &request{Op: spec.OpMkdir, Path: path}, nil)
	rep.done()
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(ctx context.Context, path string) error {
	rep, err := c.call(ctx, &request{Op: spec.OpRmdir, Path: path}, nil)
	rep.done()
	return err
}

// Unlink removes a file.
func (c *Client) Unlink(ctx context.Context, path string) error {
	rep, err := c.call(ctx, &request{Op: spec.OpUnlink, Path: path}, nil)
	rep.done()
	return err
}

// Rename moves src to dst.
func (c *Client) Rename(ctx context.Context, src, dst string) error {
	rep, err := c.call(ctx, &request{Op: spec.OpRename, Path: src, Path2: dst}, nil)
	rep.done()
	return err
}

// Stat reports an inode's kind and size.
func (c *Client) Stat(ctx context.Context, path string) (fsapi.Info, error) {
	rep, err := c.call(ctx, &request{Op: spec.OpStat, Path: path}, nil)
	if err != nil {
		return fsapi.Info{}, err
	}
	info := fsapi.Info{Kind: spec.Kind(rep.Kind), Size: rep.Size}
	rep.done()
	return info, nil
}

// Read fills dst with bytes at off, reporting how many were read. Reads
// beyond MaxIOSize are split into sequential wire requests; a short chunk
// ends the read (EOF semantics compose across chunks).
func (c *Client) Read(ctx context.Context, path string, off int64, dst []byte) (int, error) {
	total := 0
	for {
		chunk := dst[total:]
		if len(chunk) > MaxIOSize {
			chunk = chunk[:MaxIOSize]
		}
		rep, err := c.call(ctx, &request{Op: spec.OpRead, Path: path, Off: off + int64(total), Size: int32(len(chunk))}, nil)
		if err != nil {
			return total, err
		}
		n := copy(chunk, rep.Data)
		rep.done()
		total += n
		if n < len(chunk) || total == len(dst) {
			return total, nil
		}
	}
}

// Readv reads several extents of one file in a single wire round trip,
// amortizing per-request framing. dsts[i] is filled from offs[i]; the
// returned counts mirror fsapi.FS.Read's short-read semantics per
// extent. Every extent must fit MaxIOSize and the extent count
// MaxExtents, matching the server's caps.
func (c *Client) Readv(ctx context.Context, path string, offs []int64, dsts [][]byte) ([]int, error) {
	if len(offs) != len(dsts) {
		return nil, fserr.ErrInvalid
	}
	if len(offs) == 0 {
		return nil, nil
	}
	exts := make([]extent, len(offs))
	for i := range offs {
		exts[i] = extent{Off: offs[i], Size: int32(len(dsts[i]))}
	}
	rep, err := c.call(ctx, &request{Op: spec.OpReadv, Path: path, Extents: exts}, nil)
	if err != nil {
		return nil, err
	}
	defer rep.done()
	if len(rep.Sizes) != len(offs) {
		return nil, errors.New("fuse: readv reply size-table mismatch")
	}
	ns := make([]int, len(offs))
	data := rep.Data
	for i, sz := range rep.Sizes {
		if sz < 0 || int(sz) > len(data) {
			return nil, errors.New("fuse: readv reply overruns payload")
		}
		ns[i] = copy(dsts[i], data[:sz])
		data = data[sz:]
	}
	return ns, nil
}

// Write stores data at off. Writes beyond MaxIOSize are split into
// sequential wire requests (each chunk is atomic on the server; the
// composite is not, exactly like write(2) on a pipe-sized boundary).
func (c *Client) Write(ctx context.Context, path string, off int64, data []byte) (int, error) {
	total := 0
	for {
		chunk := data[total:]
		if len(chunk) > MaxIOSize {
			chunk = chunk[:MaxIOSize]
		}
		rep, err := c.call(ctx, &request{Op: spec.OpWrite, Path: path, Off: off + int64(total)}, chunk)
		if err != nil {
			return total, err
		}
		n := int(rep.N)
		rep.done()
		total += n
		if total == len(data) || n < len(chunk) {
			return total, nil
		}
	}
}

// Truncate resizes a file.
func (c *Client) Truncate(ctx context.Context, path string, size int64) error {
	rep, err := c.call(ctx, &request{Op: spec.OpTruncate, Path: path, Off: size}, nil)
	rep.done()
	return err
}

// Readdir lists entries in sorted order, paginating over the wire in
// MaxDirNames-bounded chunks so no directory produces an unbounded
// frame. Pagination under concurrent mutation is best-effort, like
// POSIX readdir; the merged listing is re-sorted and deduplicated.
func (c *Client) Readdir(ctx context.Context, path string) ([]string, error) {
	names := []string{}
	cursor := int64(0)
	pages := 0
	for {
		rep, err := c.call(ctx, &request{Op: spec.OpReaddirChunk, Path: path, Off: cursor, Size: MaxDirNames}, nil)
		if err != nil {
			return nil, err
		}
		names = append(names, rep.Names...)
		next := rep.Size
		rep.done()
		if next < 0 {
			break
		}
		if next <= cursor {
			return nil, errors.New("fuse: readdir cursor did not advance")
		}
		cursor = next
		pages++
	}
	if pages > 0 {
		// Multi-page listings can interleave with mutations; restore the
		// sorted-unique contract.
		sort.Strings(names)
		names = dedupSorted(names)
	}
	return names, nil
}

func dedupSorted(names []string) []string {
	out := names[:0]
	for i, n := range names {
		if i == 0 || n != names[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// Pipe returns a connected in-process client/server pair over net.Pipe
// (the "mount" used by tests and the quickstart example).
func Pipe(fs fsapi.FS) (*Client, *Server) {
	srv := NewServer(fs)
	c1, c2 := net.Pipe()
	srv.mu.Lock()
	srv.conns[c2] = nil
	srv.wg.Add(1)
	srv.mu.Unlock()
	go func() {
		defer srv.wg.Done()
		srv.ServeConn(c2)
	}()
	return NewClient(c1), srv
}
