package fuse

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/spec"
)

// Server dispatches protocol requests to a file system. Each request runs
// on its own goroutine (bounded by a semaphore), matching FUSE's
// multi-threaded daemon loop, so independent operations proceed in
// parallel even over one connection.
//
// Context plumbing: every connection gets a context cancelled when the
// connection (or the server) closes, and every request carrying a wire
// deadline gets a per-request sub-context. The request context reaches the
// file system, so a dropped connection aborts its in-flight traversals at
// their next cancellation poll instead of leaving them to run to
// completion against a client that is gone. Requests whose deadline has
// already passed when they clear the admission semaphore are rejected with
// ETIMEDOUT before touching the file system at all — a doomed request
// must not be allowed to acquire inode locks just to discover it is late.
type Server struct {
	fs fsapi.FS
	// MaxInflight bounds concurrent requests per connection.
	maxInflight int
	// obs, when non-nil, instruments the dispatch loop (see SetObs).
	obs *srvObs

	// quotas holds per-tenant admission buckets (see SetQuota).
	quotaMu sync.RWMutex
	quotas  map[string]*tenantBucket

	mu     sync.Mutex
	closed bool
	lis    net.Listener
	conns  map[net.Conn]func() // conn -> its context cancel
	wg     sync.WaitGroup
}

// NewServer creates a server over fs.
func NewServer(fs fsapi.FS) *Server {
	return &Server{fs: fs, maxInflight: 64, conns: map[net.Conn]func(){}}
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = nil
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops the server and its connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.lis != nil {
		s.lis.Close()
	}
	for c, cancel := range s.conns {
		c.Close()
		if cancel != nil {
			cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ServeConn processes one connection synchronously (exported so tests and
// in-process transports can drive a net.Pipe end directly).
func (s *Server) ServeConn(conn net.Conn) {
	// The connection is the root of this request tree; there is no caller
	// context to inherit from. ctxlint:allow
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer conn.Close()
	s.mu.Lock()
	s.conns[conn] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	p := s.obs
	if p != nil {
		p.conns.Inc(0)
		defer p.conns.Dec(0)
	}
	var writeMu sync.Mutex
	var inflight sync.WaitGroup
	sem := make(chan struct{}, s.maxInflight)
	for {
		frame, err := readFrame(conn)
		if err != nil {
			break // EOF or broken connection
		}
		req, err := decodeRequest(frame)
		if err != nil {
			break // protocol violation; drop the connection
		}
		// Anchor the wire deadline before the request can queue on the
		// semaphore: time spent waiting for an inflight slot counts
		// against the caller's budget, exactly like time spent in FUSE's
		// pending queue.
		reqCtx, reqCancel := ctx, func() {}
		if req.TimeoutNs > 0 {
			reqCtx, reqCancel = context.WithTimeout(ctx, time.Duration(req.TimeoutNs))
		}
		var queuedNs int64
		if p != nil {
			queuedNs = p.queueReq(req, len(frame))
		}
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			defer reqCancel()
			// Per-tenant admission runs BEFORE the inflight semaphore: a
			// throttled tenant waits (or is rejected) without holding a
			// dispatch slot the other tenants could use.
			if err := s.admit(reqCtx, req); err != nil {
				if p != nil {
					p.dispatchReq(req)
				}
				body, encErr := encodeReply(&reply{ID: req.ID, Errno: fserr.Errno(err)})
				if encErr == nil {
					writeMu.Lock()
					writeFrame(conn, body) //nolint:errcheck // connection teardown is handled by the read loop
					writeMu.Unlock()
					if p != nil {
						p.replyReq(req, queuedNs, len(body))
					}
				}
				return
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			if p != nil {
				p.dispatchReq(req)
			}
			var rep *reply
			if err := reqCtx.Err(); err != nil {
				// Admission check: the deadline expired (or the connection
				// died) while the request sat in the queue. Reject it here,
				// before it can hold any inode lock.
				rep = &reply{ID: req.ID, Errno: fserr.Errno(err)}
			} else {
				rep = s.handle(reqCtx, req)
			}
			body, err := encodeReply(rep)
			if err != nil {
				if p != nil {
					p.inflight.Dec(req.ID)
				}
				return
			}
			writeMu.Lock()
			writeFrame(conn, body) //nolint:errcheck // connection teardown is handled by the read loop
			writeMu.Unlock()
			if p != nil {
				p.replyReq(req, queuedNs, len(body))
			}
		}()
	}
	cancel() // connection gone: abort every in-flight request
	inflight.Wait()
}

func (s *Server) handle(ctx context.Context, req *request) *reply {
	rep := &reply{ID: req.ID}
	fail := func(err error) *reply {
		rep.Errno = fserr.Errno(err)
		return rep
	}
	switch req.Op {
	case spec.OpMknod:
		if err := s.fs.Mknod(ctx, req.Path); err != nil {
			return fail(err)
		}
	case spec.OpMkdir:
		if err := s.fs.Mkdir(ctx, req.Path); err != nil {
			return fail(err)
		}
	case spec.OpRmdir:
		if err := s.fs.Rmdir(ctx, req.Path); err != nil {
			return fail(err)
		}
	case spec.OpUnlink:
		if err := s.fs.Unlink(ctx, req.Path); err != nil {
			return fail(err)
		}
	case spec.OpRename:
		if err := s.fs.Rename(ctx, req.Path, req.Path2); err != nil {
			return fail(err)
		}
	case spec.OpStat:
		info, err := s.fs.Stat(ctx, req.Path)
		if err != nil {
			return fail(err)
		}
		rep.Kind = uint8(info.Kind)
		rep.Size = info.Size
	case spec.OpRead:
		if req.Size < 0 {
			return fail(fserr.ErrInvalid)
		}
		dst := make([]byte, req.Size)
		n, err := s.fs.Read(ctx, req.Path, req.Off, dst)
		if err != nil {
			return fail(err)
		}
		rep.Data = dst[:n:n]
		rep.N = int32(n)
	case spec.OpWrite:
		n, err := s.fs.Write(ctx, req.Path, req.Off, req.Data)
		if err != nil {
			return fail(err)
		}
		rep.N = int32(n)
	case spec.OpTruncate:
		if err := s.fs.Truncate(ctx, req.Path, req.Off); err != nil {
			return fail(err)
		}
	case spec.OpReaddir:
		names, err := s.fs.Readdir(ctx, req.Path)
		if err != nil {
			return fail(err)
		}
		rep.Names = names
	default:
		return fail(fserr.ErrInvalid)
	}
	return rep
}

// ErrClientClosed is returned by calls on a closed client.
var ErrClientClosed = errors.New("fuse: client closed")

// Client implements fsapi.FS over a protocol connection.
type Client struct {
	conn net.Conn
	// tenant labels every request for the server's admission control.
	tenant string

	writeMu sync.Mutex
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *reply
	err     error
	done    chan struct{}
}

var _ fsapi.FS = (*Client)(nil)

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, pending: map[uint64]chan *reply{}, done: make(chan struct{})}
	go c.readLoop()
	return c
}

// Dial connects to a TCP server address.
func Dial(addr string) (*Client, error) { return DialNetwork("tcp", addr) }

// DialNetwork connects over an arbitrary network ("tcp", "unix", ...).
func DialNetwork(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Name identifies the implementation in benchmark tables.
func (c *Client) Name() string { return "fuse-client" }

// SetTenant labels all subsequent requests with the given tenant for the
// server's admission control and per-tenant accounting. Call before
// issuing operations; the label is read without synchronization.
func (c *Client) SetTenant(tenant string) { c.tenant = tenant }

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) readLoop() {
	var loopErr error
	for {
		frame, err := readFrame(c.conn)
		if err != nil {
			loopErr = err
			break
		}
		rep, err := decodeReply(frame)
		if err != nil {
			loopErr = err
			break
		}
		c.mu.Lock()
		ch := c.pending[rep.ID]
		delete(c.pending, rep.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- rep
		}
	}
	if loopErr == nil || errors.Is(loopErr, io.EOF) {
		loopErr = ErrClientClosed
	}
	c.mu.Lock()
	c.err = loopErr
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	close(c.done)
}

// call sends req and waits for its reply or for ctx. A context deadline is
// forwarded on the wire as the remaining budget, so the server can reject
// or abort the request on its side too; cancellation while waiting
// abandons the reply locally (the reply is discarded when it arrives —
// the wire protocol has no interrupt message, mirroring the fact that a
// FUSE INTERRUPT is advisory anyway).
func (c *Client) call(ctx context.Context, req *request) (*reply, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req.Tenant = c.tenant
	if dl, ok := ctx.Deadline(); ok {
		budget := time.Until(dl)
		if budget <= 0 {
			return nil, context.DeadlineExceeded
		}
		req.TimeoutNs = int64(budget)
	}
	ch := make(chan *reply, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, encodeRequest(req))
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case rep, ok := <-ch:
		if !ok {
			return nil, ErrClientClosed
		}
		if rep.Errno != 0 {
			return rep, fserr.FromErrno(rep.Errno)
		}
		return rep, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Mknod creates an empty file.
func (c *Client) Mknod(ctx context.Context, path string) error {
	_, err := c.call(ctx, &request{Op: spec.OpMknod, Path: path})
	return err
}

// Mkdir creates an empty directory.
func (c *Client) Mkdir(ctx context.Context, path string) error {
	_, err := c.call(ctx, &request{Op: spec.OpMkdir, Path: path})
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(ctx context.Context, path string) error {
	_, err := c.call(ctx, &request{Op: spec.OpRmdir, Path: path})
	return err
}

// Unlink removes a file.
func (c *Client) Unlink(ctx context.Context, path string) error {
	_, err := c.call(ctx, &request{Op: spec.OpUnlink, Path: path})
	return err
}

// Rename moves src to dst.
func (c *Client) Rename(ctx context.Context, src, dst string) error {
	_, err := c.call(ctx, &request{Op: spec.OpRename, Path: src, Path2: dst})
	return err
}

// Stat reports an inode's kind and size.
func (c *Client) Stat(ctx context.Context, path string) (fsapi.Info, error) {
	rep, err := c.call(ctx, &request{Op: spec.OpStat, Path: path})
	if err != nil {
		return fsapi.Info{}, err
	}
	return fsapi.Info{Kind: spec.Kind(rep.Kind), Size: rep.Size}, nil
}

// Read fills dst with bytes at off, reporting how many were read.
func (c *Client) Read(ctx context.Context, path string, off int64, dst []byte) (int, error) {
	rep, err := c.call(ctx, &request{Op: spec.OpRead, Path: path, Off: off, Size: int32(len(dst))})
	if err != nil {
		return 0, err
	}
	return copy(dst, rep.Data), nil
}

// Write stores data at off.
func (c *Client) Write(ctx context.Context, path string, off int64, data []byte) (int, error) {
	rep, err := c.call(ctx, &request{Op: spec.OpWrite, Path: path, Off: off, Data: data})
	if err != nil {
		return 0, err
	}
	return int(rep.N), nil
}

// Truncate resizes a file.
func (c *Client) Truncate(ctx context.Context, path string, size int64) error {
	_, err := c.call(ctx, &request{Op: spec.OpTruncate, Path: path, Off: size})
	return err
}

// Readdir lists entries in sorted order.
func (c *Client) Readdir(ctx context.Context, path string) ([]string, error) {
	rep, err := c.call(ctx, &request{Op: spec.OpReaddir, Path: path})
	if err != nil {
		return nil, err
	}
	if rep.Names == nil {
		return []string{}, nil
	}
	return rep.Names, nil
}

// Pipe returns a connected in-process client/server pair over net.Pipe
// (the "mount" used by tests and the quickstart example).
func Pipe(fs fsapi.FS) (*Client, *Server) {
	srv := NewServer(fs)
	c1, c2 := net.Pipe()
	srv.mu.Lock()
	srv.conns[c2] = nil
	srv.wg.Add(1)
	srv.mu.Unlock()
	go func() {
		defer srv.wg.Done()
		srv.ServeConn(c2)
	}()
	return NewClient(c1), srv
}
