package fuse

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/atomfs"
	"repro/internal/core"
	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/fstest"
	"repro/internal/memfs"
	"repro/internal/spec"
)

func TestCodecRoundTrip(t *testing.T) {
	req := &request{
		ID: 7, Op: spec.OpWrite, Path: "/a/b", Path2: "/c",
		Off: 1 << 40, Size: 123, Data: []byte("payload"),
	}
	got, err := decodeRequest(encodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Op != spec.OpWrite || got.Path != "/a/b" ||
		got.Path2 != "/c" || got.Off != 1<<40 || got.Size != 123 ||
		!bytes.Equal(got.Data, []byte("payload")) {
		t.Fatalf("round trip: %+v", got)
	}

	rep := &reply{ID: 9, Errno: fserr.ENOENT, Kind: 2, Size: 42, N: 5,
		Data: []byte{1, 2, 3}, Names: []string{"x", "y"}}
	body, err := encodeReply(rep)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := decodeReply(body)
	if err != nil {
		t.Fatal(err)
	}
	if got2.ID != 9 || got2.Errno != fserr.ENOENT || got2.Kind != 2 ||
		got2.Size != 42 || got2.N != 5 || len(got2.Names) != 2 || got2.Names[1] != "y" {
		t.Fatalf("round trip: %+v", got2)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := decodeRequest([]byte{1, 2}); err == nil {
		t.Error("truncated request accepted")
	}
	if _, err := decodeReply([]byte{0}); err == nil {
		t.Error("truncated reply accepted")
	}
	// Trailing bytes.
	body := append(encodeRequest(&request{Op: spec.OpStat, Path: "/"}), 0xFF)
	if _, err := decodeRequest(body); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestPipeFunctional(t *testing.T) {
	client, srv := Pipe(atomfs.New())
	defer srv.Close()
	defer client.Close()
	fstest.Functional(t, client)
}

func TestPipeDifferential(t *testing.T) {
	client, srv := Pipe(atomfs.New())
	defer srv.Close()
	defer client.Close()
	fstest.Differential(t, client, 99, 400)
}

func TestTCPServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(memfs.New())
	go srv.Serve(lis)
	defer srv.Close()

	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Mkdir(tctx, "/remote"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(tctx, "/remote/f", 0, []byte("x")); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("write missing = %v", err)
	}
	if err := client.Mknod(tctx, "/remote/f"); err != nil {
		t.Fatal(err)
	}
	if n, err := client.Write(tctx, "/remote/f", 0, []byte("over the wire")); err != nil || n != 13 {
		t.Fatalf("write = %d %v", n, err)
	}
	data, err := fsapi.ReadAll(tctx, client, "/remote/f", 5, 3)
	if err != nil || string(data) != "the" {
		t.Fatalf("read = %q %v", data, err)
	}
	names, err := client.Readdir(tctx, "/remote")
	if err != nil || len(names) != 1 {
		t.Fatalf("readdir = %v %v", names, err)
	}

	// A second client sees the same state.
	client2, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	info, err := client2.Stat(tctx, "/remote/f")
	if err != nil || info.Size != 13 {
		t.Fatalf("stat via second client = %+v %v", info, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(atomfs.New())
	go srv.Serve(lis)
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client, err := Dial(lis.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer client.Close()
			fstest.Stress(t, client, 2, 100, int64(g))
		}(g)
	}
	wg.Wait()
}

func TestPipelinedRequestsOneConn(t *testing.T) {
	client, srv := Pipe(atomfs.New())
	defer srv.Close()
	defer client.Close()
	if err := client.Mkdir(tctx, "/d"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := "/d/f" + string(rune('a'+i))
			if err := client.Mknod(tctx, p); err != nil {
				t.Errorf("mknod %s: %v", p, err)
			}
			if _, err := client.Stat(tctx, p); err != nil {
				t.Errorf("stat %s: %v", p, err)
			}
		}(i)
	}
	wg.Wait()
	names, err := client.Readdir(tctx, "/d")
	if err != nil || len(names) != 16 {
		t.Fatalf("readdir = %d %v", len(names), err)
	}
}

func TestClientClosedCalls(t *testing.T) {
	client, srv := Pipe(memfs.New())
	client.Close()
	srv.Close()
	if err := client.Mkdir(tctx, "/x"); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

// TestMonitoredServer: concurrent remote clients against a monitored
// AtomFS — the dispatch layer must preserve the verified envelope.
func TestMonitoredServer(t *testing.T) {
	mon := core.NewMonitor(core.Config{CheckGoodAFS: true})
	fs := atomfs.New(atomfs.WithMonitor(mon))
	client, srv := Pipe(fs)
	defer srv.Close()
	defer client.Close()
	if err := client.Mkdir(tctx, "/shared"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p := fmt.Sprintf("/shared/w%d-%d", w, i)
				client.Mknod(tctx, p)
				client.Write(tctx, p, 0, []byte("x"))
				client.Rename(tctx, p, p+"-final")
				client.Unlink(tctx, p + "-final")
			}
		}(w)
	}
	wg.Wait()
	for _, v := range mon.Violations() {
		t.Errorf("violation: %s", v)
	}
	if err := mon.Quiesce(); err != nil {
		t.Fatal(err)
	}
}

// TestUnixSocketTransport serves over a unix socket.
func TestUnixSocketTransport(t *testing.T) {
	sock := t.TempDir() + "/fs.sock"
	lis, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(memfs.New())
	go srv.Serve(lis)
	defer srv.Close()
	client, err := DialNetwork("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Mkdir(tctx, "/via-unix"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stat(tctx, "/via-unix"); err != nil {
		t.Fatal(err)
	}
}
