package fuse

// Observability hooks for the daemon loop. A Server with a registry
// attached (SetObs) counts requests per opcode, tracks queue depth and
// in-flight handlers as gauges, accumulates wire throughput, and traces
// every request's queue→dispatch→reply lifecycle into the registry's
// flight recorder. All instruments are nil-safe, so an uninstrumented
// Server pays only a nil check per site.

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/spec"
)

const nOps = int(spec.OpReadv) + 1

// srvObs bundles the Server's instruments so the hot loop dereferences a
// single pointer.
type srvObs struct {
	rec      *obs.FlightRecorder
	requests [nOps]*obs.Counter
	reqLat   *obs.Histogram
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	queued   *obs.Gauge
	inflight *obs.Gauge
	conns    *obs.Gauge
	// Writer-coalescing instruments: flushes counts vectored writes,
	// flushedFrames the frames they carried (frames/flush is the batching
	// ratio the net bench suite reports).
	flushes       *obs.Counter
	flushedFrames *obs.Counter

	// Per-tenant instruments, created lazily on first sight of a label
	// (tenant cardinality is operator-controlled via SetQuota/SetTenant).
	reg       *obs.Registry
	tenantMu  sync.Mutex
	tenantMap map[string]*tenantObs

	// Per-reason rejection counters (wire-cap violations), created lazily;
	// reason cardinality is fixed by the handler's reject() call sites.
	rejectMu  sync.Mutex
	rejectMap map[string]*obs.Counter
}

// tenantObs bundles one tenant's admission instruments.
type tenantObs struct {
	requests   *obs.Counter // requests replied (any outcome)
	admitted   *obs.Counter // requests past admission
	rejected   *obs.Counter // requests refused or abandoned at admission
	queued     *obs.Gauge   // requests waiting for a token right now
	throttleNs *obs.Histogram
}

// tenant returns (creating if needed) the instruments for one label.
func (p *srvObs) tenant(name string) *tenantObs {
	p.tenantMu.Lock()
	defer p.tenantMu.Unlock()
	if t, ok := p.tenantMap[name]; ok {
		return t
	}
	label := `{tenant="` + name + `"}`
	t := &tenantObs{
		requests:   p.reg.Counter("fuse_tenant_requests_total" + label),
		admitted:   p.reg.Counter("fuse_tenant_admitted_total" + label),
		rejected:   p.reg.Counter("fuse_tenant_rejected_total" + label),
		queued:     p.reg.Gauge("fuse_tenant_queued" + label),
		throttleNs: p.reg.Histogram("fuse_tenant_throttle_ns" + label),
	}
	p.tenantMap[name] = t
	return t
}

func newSrvObs(reg *obs.Registry) *srvObs {
	p := &srvObs{
		reg:           reg,
		tenantMap:     map[string]*tenantObs{},
		rejectMap:     map[string]*obs.Counter{},
		rec:           reg.FlightRecorder(),
		reqLat:        reg.Histogram("fuse_request_ns"),
		bytesIn:       reg.Counter("fuse_bytes_read_total"),
		bytesOut:      reg.Counter("fuse_bytes_written_total"),
		queued:        reg.Gauge("fuse_queued"),
		inflight:      reg.Gauge("fuse_inflight"),
		conns:         reg.Gauge("fuse_conns"),
		flushes:       reg.Counter("fuse_writer_flushes_total"),
		flushedFrames: reg.Counter("fuse_writer_frames_total"),
	}
	for k := spec.Op(0); int(k) < nOps; k++ {
		p.requests[k] = reg.Counter(`fuse_requests_total{op="` + k.String() + `"}`)
	}
	return p
}

// SetObs attaches a metrics registry to the server. Call before Serve or
// ServeConn; the server never mutates the pack afterwards, so attaching
// early makes the pointer safely visible to connection goroutines.
func (s *Server) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.obs = newSrvObs(reg)
}

// queueReq records a request coming off the wire.
func (p *srvObs) queueReq(req *request, frameLen int) (queuedNs int64) {
	now := time.Now().UnixNano()
	p.bytesIn.Add(req.ID, uint64(frameLen))
	p.queued.Inc(req.ID)
	p.rec.EmitAt(now, req.ID, obs.EvFuseQueue, uint8(req.Op), 0, req.ID)
	return now
}

// dispatchReq records a handler goroutine picking the request up.
func (p *srvObs) dispatchReq(req *request) {
	p.queued.Dec(req.ID)
	p.inflight.Inc(req.ID)
	p.rec.Emit(req.ID, obs.EvFuseDispatch, uint8(req.Op), 0, req.ID)
}

// replyReq records the reply hitting the wire and closes out the
// request's latency sample (queue-to-reply, the client-visible figure).
func (p *srvObs) replyReq(req *request, queuedNs int64, bodyLen int) {
	now := time.Now().UnixNano()
	p.inflight.Dec(req.ID)
	if int(req.Op) < nOps {
		p.requests[req.Op].Inc(req.ID)
	}
	if req.Tenant != "" {
		p.tenant(req.Tenant).requests.Inc(req.ID)
	}
	p.reqLat.Observe(req.ID, now-queuedNs)
	p.bytesOut.Add(req.ID, uint64(bodyLen))
	p.rec.EmitAt(now, req.ID, obs.EvFuseReply, uint8(req.Op), 0, req.ID)
}

// dropReq closes out a request whose reply never reached the wire (the
// connection writer refused it: dying connection or expired deadline
// under backpressure).
func (p *srvObs) dropReq(req *request) {
	p.inflight.Dec(req.ID)
}

// reject counts a wire-cap violation in
// atomfs_fuse_rejected_total{reason="..."}.
func (p *srvObs) reject(reason string, id uint64) {
	p.rejectMu.Lock()
	c, ok := p.rejectMap[reason]
	if !ok {
		c = p.reg.Counter(`atomfs_fuse_rejected_total{reason="` + reason + `"}`)
		p.rejectMap[reason] = c
	}
	p.rejectMu.Unlock()
	c.Inc(id)
}

// flush observes one completed vectored write (frameWriter hook).
func (p *srvObs) flush(frames, bytes int) {
	p.flushes.Inc(0)
	p.flushedFrames.Add(0, uint64(frames))
}
