package fuse

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/memfs"
	"repro/internal/obs"
)

func netPipe() (net.Conn, net.Conn) { return net.Pipe() }

// TestTenantQuotaPaces: a tenant with a 1-token bucket at a modest rate
// is paced to that rate — five sequential requests must take at least
// four token intervals end to end.
func TestTenantQuotaPaces(t *testing.T) {
	client, srv := Pipe(memfs.New())
	defer srv.Close()
	defer client.Close()
	srv.SetQuota("slow", QuotaConfig{Rate: 100, Burst: 1})
	client.SetTenant("slow")

	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := client.Stat(ctx, "/"); err != nil {
			t.Fatalf("stat %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("five requests at 100/s with burst 1 took only %v", elapsed)
	}
}

// TestTenantUnlabelledUnthrottled: quotas bind to labels; an unlabelled
// client (and a differently-labelled one) must not be paced by them.
func TestTenantUnlabelledUnthrottled(t *testing.T) {
	client, srv := Pipe(memfs.New())
	defer srv.Close()
	defer client.Close()
	srv.SetQuota("other", QuotaConfig{Rate: 1, Burst: 1})

	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := client.Stat(ctx, "/"); err != nil {
			t.Fatalf("stat %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("unlabelled client was throttled: %v", elapsed)
	}
}

// TestTenantDeadlineAdmission: a request whose deadline cannot be met by
// its reserved token slot is rejected with ETIMEDOUT immediately instead
// of queueing — the reject must come back far sooner than the token wait.
func TestTenantDeadlineAdmission(t *testing.T) {
	client, srv := Pipe(memfs.New())
	defer srv.Close()
	defer client.Close()
	srv.SetQuota("t", QuotaConfig{Rate: 0.5, Burst: 1}) // one token, 2s refill
	client.SetTenant("t")

	ctx := context.Background()
	if _, err := client.Stat(ctx, "/"); err != nil {
		t.Fatalf("burst request: %v", err)
	}
	dctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Stat(dctx, "/")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("doomed request: err = %v, want deadline exceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("doomed request waited %v instead of failing fast", elapsed)
	}
}

// TestTenantQueueOverflow: waiters beyond MaxQueue are rejected rather
// than queued without bound.
func TestTenantQueueOverflow(t *testing.T) {
	client, srv := Pipe(memfs.New())
	defer srv.Close()
	defer client.Close()
	srv.SetQuota("t", QuotaConfig{Rate: 5, Burst: 1, MaxQueue: 2})
	client.SetTenant("t")

	ctx := context.Background()
	const n = 10
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := client.Stat(ctx, "/")
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	okN, rejected := 0, 0
	for err := range errs {
		switch {
		case err == nil:
			okN++
		case errors.Is(err, context.DeadlineExceeded):
			rejected++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// Burst 1 + MaxQueue 2 means at most 3 can be in the bucket's hands
	// at once; with all 10 arriving together, some must have overflowed.
	if rejected == 0 {
		t.Fatalf("no queue-overflow rejects (ok=%d)", okN)
	}
	if okN == 0 {
		t.Fatal("every request was rejected")
	}
}

// TestTenantObsCounters: the per-tenant instruments appear in the
// registry and account for admissions, rejections and replies.
func TestTenantObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	fs := memfs.New()
	srv := NewServer(fs)
	srv.SetObs(reg)
	srv.SetQuota("acct", QuotaConfig{Rate: 1000, Burst: 1000})
	client, srv2 := pipeInto(srv)
	defer srv2.Close()
	defer client.Close()
	client.SetTenant("acct")

	ctx := context.Background()
	for i := 0; i < 7; i++ {
		if _, err := client.Stat(ctx, "/"); err != nil {
			t.Fatalf("stat: %v", err)
		}
	}
	if got := reg.Counter(`fuse_tenant_requests_total{tenant="acct"}`).Value(); got != 7 {
		t.Errorf("tenant requests = %d, want 7", got)
	}
	if got := reg.Counter(`fuse_tenant_admitted_total{tenant="acct"}`).Value(); got != 7 {
		t.Errorf("tenant admitted = %d, want 7", got)
	}
	if got := reg.Counter(`fuse_tenant_rejected_total{tenant="acct"}`).Value(); got != 0 {
		t.Errorf("tenant rejected = %d, want 0", got)
	}
}

// TestTenantIsolation: a throttled tenant saturating its bucket must not
// slow an unthrottled tenant sharing the connection's dispatch loop.
func TestTenantIsolation(t *testing.T) {
	fs := memfs.New()
	srv := NewServer(fs)
	srv.SetQuota("noisy", QuotaConfig{Rate: 20, Burst: 1, MaxQueue: 64})
	noisy, srv2 := pipeInto(srv)
	defer srv2.Close()
	defer noisy.Close()
	noisy.SetTenant("noisy")
	quiet, _ := pipeInto(srv)
	defer quiet.Close()

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				noisy.Stat(ctx, "/")
			}
		}
	}()
	start := time.Now()
	for i := 0; i < 50; i++ {
		if _, err := quiet.Stat(ctx, "/"); err != nil {
			t.Fatalf("quiet stat: %v", err)
		}
	}
	quietElapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if quietElapsed > 2*time.Second {
		t.Fatalf("quiet tenant starved: 50 stats took %v", quietElapsed)
	}
}

// pipeInto connects a new in-process client to an existing server (Pipe
// always makes a fresh server, which would drop the quota/obs setup).
func pipeInto(srv *Server) (*Client, *Server) {
	c1, c2 := netPipe()
	srv.mu.Lock()
	srv.conns[c2] = nil
	srv.wg.Add(1)
	srv.mu.Unlock()
	go func() {
		defer srv.wg.Done()
		srv.ServeConn(c2)
	}()
	return NewClient(c1), srv
}
