package fuse

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/atomfs"
	"repro/internal/fsapi"
	"repro/internal/obs"
	"repro/internal/spec"
)

// obsPipe is Pipe with a registry attached before the connection starts,
// so the dispatch loop observes the instruments from its first request.
func obsPipe(t *testing.T, reg *obs.Registry) (*Client, *Server) {
	t.Helper()
	fs := atomfs.New(atomfs.WithFastPath(), atomfs.WithObs(reg))
	srv := NewServer(fs)
	srv.SetObs(reg)
	c1, c2 := net.Pipe()
	srv.mu.Lock()
	srv.conns[c2] = func() {}
	srv.wg.Add(1)
	srv.mu.Unlock()
	go func() {
		defer srv.wg.Done()
		srv.ServeConn(c2)
	}()
	return NewClient(c1), srv
}

// TestDebugEndpointsUnderTraffic serves the full debug mux over the
// shared registry of an instrumented daemon (file system + dispatch
// loop), drives concurrent client traffic, and asserts every endpoint
// family returns a parseable payload while requests are in flight.
func TestDebugEndpointsUnderTraffic(t *testing.T) {
	reg := obs.NewRegistry()
	client, srv := obsPipe(t, reg)
	defer srv.Close()
	defer client.Close()

	if err := client.Mkdir(tctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := client.Mknod(tctx, "/d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(tctx, "/d/f", 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	// Background traffic for the duration of the endpoint probes.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := client.Stat(tctx, "/d/f"); err != nil {
					return
				}
				if _, err := fsapi.ReadAll(tctx, client, "/d/f", 0, 7); err != nil {
					return
				}
				if _, err := client.Readdir(tctx, "/d"); err != nil {
					return
				}
			}
		}()
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	mux := obs.NewDebugMux(reg, func(op uint8) string { return spec.Op(op).String() })
	ts := httptest.NewServer(mux)
	defer ts.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// /metrics: Prometheus text exposition with both layers' series.
	metrics, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	for _, want := range []string{
		`fuse_requests_total{op="stat"}`,
		`atomfs_ops_total{op="stat"}`,
		"fuse_request_ns_count",
		"fuse_conns 1",
		"# TYPE",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(metrics, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("/metrics line not \"name value\": %q", line)
		}
	}

	// /debug/vars: one JSON object, numeric leaves.
	vars, ctype := get("/debug/vars")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/debug/vars content type %q", ctype)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if v, ok := parsed[`fuse_requests_total{op="stat"}`].(float64); !ok || v <= 0 {
		t.Errorf("/debug/vars fuse stat counter = %v", parsed[`fuse_requests_total{op="stat"}`])
	}

	// /debug/flightrec: the request lifecycle appears in order somewhere.
	flight, _ := get("/debug/flightrec")
	qi := strings.Index(flight, "fuse-queue")
	di := strings.Index(flight, "fuse-dispatch")
	ri := strings.Index(flight, "fuse-reply")
	if qi < 0 || di < 0 || ri < 0 {
		t.Fatalf("/debug/flightrec missing request lifecycle events:\n%.500s", flight)
	}

	// /debug/pprof/: the profile index must render.
	pprofIdx, _ := get("/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%.300s", pprofIdx)
	}
}

// TestServerGaugesSettle checks that queue/inflight gauges return to zero
// once traffic stops and connections close (no leaked increments on any
// reply path).
func TestServerGaugesSettle(t *testing.T) {
	reg := obs.NewRegistry()
	client, srv := obsPipe(t, reg)
	if err := client.Mknod(tctx, "/f"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				client.Stat(tctx, "/f")       //nolint:errcheck
				fsapi.ReadAll(tctx, client, "/f", 0, 1) //nolint:errcheck
				client.Readdir(tctx, "/")     //nolint:errcheck
				client.Stat(tctx, "/missing") //nolint:errcheck // error replies count too
			}
		}()
	}
	wg.Wait()
	client.Close()
	srv.Close()
	if v := reg.Gauge("fuse_queued").Value(); v != 0 {
		t.Errorf("fuse_queued = %d after quiesce, want 0", v)
	}
	if v := reg.Gauge("fuse_inflight").Value(); v != 0 {
		t.Errorf("fuse_inflight = %d after quiesce, want 0", v)
	}
	if v := reg.Gauge("fuse_conns").Value(); v != 0 {
		t.Errorf("fuse_conns = %d after close, want 0", v)
	}
	if reg.Counter(`fuse_requests_total{op="stat"}`).Value() == 0 {
		t.Error("stat requests not counted")
	}
}
