// Package vfs is the VFS/FUSE plumbing layer of §5.4: it provides file
// descriptors on top of any path-based file system by maintaining the
// FD -> path mapping, exactly the contract AtomFS relies on ("AtomFS
// relies on VFS and FUSE to maintain the mapping from a file descriptor to
// the path of an inode"). Every FD-based operation is translated into a
// full path-based operation, which keeps the combined system linearizable
// — this is the paper's fix for the Figure-9 bypass.
//
// The layer also reproduces the POSIX read/write-after-unlink semantics
// the paper credits to FUSE: when an open file is unlinked, the VFS
// detaches the descriptor onto a private shadow copy, so subsequent reads
// and writes through the FD still work.
package vfs

import (
	"sync"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/spec"
)

// FD is a file descriptor.
type FD int

// MaxOpenFiles bounds the descriptor table.
const MaxOpenFiles = 1024

type openFile struct {
	path   string
	kind   spec.Kind
	offset int64
	// shadow holds the file's content after an unlink-while-open; nil
	// while the file is still linked.
	shadow []byte
	// refs supports dup-like sharing in the future; currently always 1.
	refs int
}

// VFS wraps a path-based file system with a descriptor table.
type VFS struct {
	fs fsapi.FS

	mu    sync.Mutex
	table map[FD]*openFile
	next  FD
}

// New wraps fs.
func New(fs fsapi.FS) *VFS {
	return &VFS{fs: fs, table: map[FD]*openFile{}, next: 3} // 0-2 reserved, as tradition demands
}

// Inner returns the wrapped file system (path-based escape hatch).
func (v *VFS) Inner() fsapi.FS { return v.fs }

// Open returns a descriptor for an existing file or directory.
func (v *VFS) Open(path string) (FD, error) {
	info, err := v.fs.Stat(path)
	if err != nil {
		return -1, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.table) >= MaxOpenFiles {
		return -1, fserr.ErrTooManyFiles
	}
	fd := v.next
	v.next++
	v.table[fd] = &openFile{path: path, kind: info.Kind, refs: 1}
	return fd, nil
}

// Create makes a new file (failing if it exists) and opens it.
func (v *VFS) Create(path string) (FD, error) {
	if err := v.fs.Mknod(path); err != nil {
		return -1, err
	}
	return v.Open(path)
}

// Close releases the descriptor.
func (v *VFS) Close(fd FD) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.table[fd]; !ok {
		return fserr.ErrBadFD
	}
	delete(v.table, fd)
	return nil
}

func (v *VFS) lookup(fd FD) (*openFile, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	f, ok := v.table[fd]
	if !ok {
		return nil, fserr.ErrBadFD
	}
	return f, nil
}

// Seek sets the descriptor's offset (absolute only; whence is a luxury).
func (v *VFS) Seek(fd FD, off int64) error {
	if off < 0 {
		return fserr.ErrInvalid
	}
	f, err := v.lookup(fd)
	if err != nil {
		return err
	}
	v.mu.Lock()
	f.offset = off
	v.mu.Unlock()
	return nil
}

// Read reads up to size bytes at the descriptor's offset, advancing it.
// The data path is a full path-based read (the §5.4 design); if the file
// was unlinked while open, the shadow copy serves the read.
func (v *VFS) Read(fd FD, size int) ([]byte, error) {
	f, err := v.lookup(fd)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	off := f.offset
	shadow := f.shadow
	path := f.path
	v.mu.Unlock()
	var data []byte
	if shadow != nil {
		end := min(off+int64(size), int64(len(shadow)))
		if off < int64(len(shadow)) {
			data = append([]byte(nil), shadow[off:end]...)
		} else {
			data = []byte{}
		}
	} else {
		data, err = v.fs.Read(path, off, size)
		if err != nil {
			return nil, err
		}
	}
	v.mu.Lock()
	f.offset = off + int64(len(data))
	v.mu.Unlock()
	return data, nil
}

// Write writes at the descriptor's offset, advancing it.
func (v *VFS) Write(fd FD, data []byte) (int, error) {
	f, err := v.lookup(fd)
	if err != nil {
		return 0, err
	}
	v.mu.Lock()
	off := f.offset
	path := f.path
	isShadow := f.shadow != nil
	v.mu.Unlock()
	if isShadow {
		v.mu.Lock()
		end := off + int64(len(data))
		for int64(len(f.shadow)) < end {
			f.shadow = append(f.shadow, 0)
		}
		copy(f.shadow[off:end], data)
		f.offset = end
		v.mu.Unlock()
		return len(data), nil
	}
	n, err := v.fs.Write(path, off, data)
	if err != nil {
		return n, err
	}
	v.mu.Lock()
	f.offset = off + int64(n)
	v.mu.Unlock()
	return n, nil
}

// StatFD stats through the descriptor.
func (v *VFS) StatFD(fd FD) (fsapi.Info, error) {
	f, err := v.lookup(fd)
	if err != nil {
		return fsapi.Info{}, err
	}
	v.mu.Lock()
	shadow := f.shadow
	path := f.path
	kind := f.kind
	v.mu.Unlock()
	if shadow != nil {
		return fsapi.Info{Kind: kind, Size: int64(len(shadow))}, nil
	}
	return v.fs.Stat(path)
}

// ReaddirFD lists a directory through the descriptor via a full path
// traversal — the linearizable FD-based readdir of §5.4.
func (v *VFS) ReaddirFD(fd FD) ([]string, error) {
	f, err := v.lookup(fd)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	path := f.path
	v.mu.Unlock()
	return v.fs.Readdir(path)
}

// Unlink removes a file; if any descriptor has it open, the descriptor is
// detached onto a shadow copy first (POSIX read-after-unlink, via the
// FUSE temporary-file behaviour the paper describes).
func (v *VFS) Unlink(path string) error {
	// Snapshot current content in case a descriptor needs detaching; read
	// before the unlink to keep the copy coherent.
	var content []byte
	var haveContent bool
	v.mu.Lock()
	anyOpen := false
	for _, f := range v.table {
		if f.path == path && f.shadow == nil {
			anyOpen = true
			break
		}
	}
	v.mu.Unlock()
	if anyOpen {
		if info, err := v.fs.Stat(path); err == nil && info.Kind == spec.KindFile {
			if data, err := v.fs.Read(path, 0, int(info.Size)); err == nil {
				content = data
				haveContent = true
			}
		}
	}
	if err := v.fs.Unlink(path); err != nil {
		return err
	}
	if haveContent {
		v.mu.Lock()
		for _, f := range v.table {
			if f.path == path && f.shadow == nil {
				f.shadow = append([]byte(nil), content...)
			}
		}
		v.mu.Unlock()
	}
	return nil
}

// Path-based pass-throughs, so applications can use a single object.

// Mknod creates an empty file.
func (v *VFS) Mknod(path string) error { return v.fs.Mknod(path) }

// Mkdir creates an empty directory.
func (v *VFS) Mkdir(path string) error { return v.fs.Mkdir(path) }

// Rmdir removes an empty directory.
func (v *VFS) Rmdir(path string) error { return v.fs.Rmdir(path) }

// Rename moves src to dst.
func (v *VFS) Rename(src, dst string) error { return v.fs.Rename(src, dst) }

// Stat stats a path.
func (v *VFS) Stat(path string) (fsapi.Info, error) { return v.fs.Stat(path) }

// Readdir lists a directory by path.
func (v *VFS) Readdir(path string) ([]string, error) { return v.fs.Readdir(path) }

// OpenCount reports the number of open descriptors (tests).
func (v *VFS) OpenCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.table)
}
