// Package vfs is the VFS/FUSE plumbing layer of §5.4: it provides file
// descriptors on top of any path-based file system by maintaining the
// FD -> path mapping, exactly the contract AtomFS relies on ("AtomFS
// relies on VFS and FUSE to maintain the mapping from a file descriptor to
// the path of an inode"). Every FD-based operation is translated into a
// full path-based operation, which keeps the combined system linearizable
// — this is the paper's fix for the Figure-9 bypass.
//
// The layer also reproduces the POSIX read/write-after-unlink semantics
// the paper credits to FUSE: when an open file is unlinked, the VFS
// detaches the descriptor onto a private shadow copy, so subsequent reads
// and writes through the FD still work.
//
// Descriptors can be duplicated (Dup): duplicates share one open-file
// description — offset, kind, and any post-unlink shadow — exactly as
// POSIX dup(2) shares the file table entry. The description is released
// when its last descriptor closes.
package vfs

import (
	"context"
	"sync"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/spec"
)

// FD is a file descriptor.
type FD int

// MaxOpenFiles bounds the descriptor table.
const MaxOpenFiles = 1024

// openFile is an open-file description. Several descriptors may share one
// (via Dup); refs counts them and the description is released when the
// last one closes.
type openFile struct {
	path   string
	kind   spec.Kind
	offset int64
	// shadow holds the file's content after an unlink-while-open; nil
	// while the file is still linked. Shared across duplicates: a write
	// through one dup'd FD is visible through the other, as POSIX demands.
	shadow []byte
	refs   int
}

// VFS wraps a path-based file system with a descriptor table.
type VFS struct {
	fs fsapi.FS

	mu    sync.Mutex
	table map[FD]*openFile
	next  FD
}

// New wraps fs.
func New(fs fsapi.FS) *VFS {
	return &VFS{fs: fs, table: map[FD]*openFile{}, next: 3} // 0-2 reserved, as tradition demands
}

// Inner returns the wrapped file system (path-based escape hatch).
func (v *VFS) Inner() fsapi.FS { return v.fs }

// alloc installs f under a fresh descriptor; caller holds no lock.
func (v *VFS) alloc(f *openFile) (FD, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.table) >= MaxOpenFiles {
		return -1, fserr.ErrTooManyFiles
	}
	fd := v.next
	v.next++
	f.refs++
	v.table[fd] = f
	return fd, nil
}

// Open returns a descriptor for an existing file or directory.
func (v *VFS) Open(ctx context.Context, path string) (FD, error) {
	info, err := v.fs.Stat(ctx, path)
	if err != nil {
		return -1, err
	}
	return v.alloc(&openFile{path: path, kind: info.Kind})
}

// Create makes a new file (failing if it exists) and opens it.
func (v *VFS) Create(ctx context.Context, path string) (FD, error) {
	if err := v.fs.Mknod(ctx, path); err != nil {
		return -1, err
	}
	return v.Open(ctx, path)
}

// Dup returns a new descriptor sharing fd's open-file description: the
// offset, and any post-unlink shadow, are common to both. The description
// is released only when the last descriptor referring to it closes.
func (v *VFS) Dup(fd FD) (FD, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	f, ok := v.table[fd]
	if !ok {
		return -1, fserr.ErrBadFD
	}
	if len(v.table) >= MaxOpenFiles {
		return -1, fserr.ErrTooManyFiles
	}
	nfd := v.next
	v.next++
	f.refs++
	v.table[nfd] = f
	return nfd, nil
}

// Close releases the descriptor; the shared open-file description is
// released when its last descriptor closes.
func (v *VFS) Close(fd FD) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	f, ok := v.table[fd]
	if !ok {
		return fserr.ErrBadFD
	}
	delete(v.table, fd)
	f.refs--
	if f.refs == 0 {
		// Last reference: drop the shadow so an unlinked file's bytes are
		// not retained past the final close (POSIX frees the inode here).
		f.shadow = nil
	}
	return nil
}

func (v *VFS) lookup(fd FD) (*openFile, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	f, ok := v.table[fd]
	if !ok {
		return nil, fserr.ErrBadFD
	}
	return f, nil
}

// Seek sets the descriptor's offset (absolute only; whence is a luxury).
func (v *VFS) Seek(fd FD, off int64) error {
	if off < 0 {
		return fserr.ErrInvalid
	}
	f, err := v.lookup(fd)
	if err != nil {
		return err
	}
	v.mu.Lock()
	f.offset = off
	v.mu.Unlock()
	return nil
}

// Read reads up to size bytes at the descriptor's offset, advancing it.
// The data path is a full path-based read (the §5.4 design); if the file
// was unlinked while open, the shadow copy serves the read.
func (v *VFS) Read(ctx context.Context, fd FD, size int) ([]byte, error) {
	f, err := v.lookup(fd)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	off := f.offset
	shadow := f.shadow
	path := f.path
	v.mu.Unlock()
	var data []byte
	if shadow != nil {
		end := min(off+int64(size), int64(len(shadow)))
		if off < int64(len(shadow)) {
			data = append([]byte(nil), shadow[off:end]...)
		} else {
			data = []byte{}
		}
	} else {
		buf := make([]byte, size)
		n, err := v.fs.Read(ctx, path, off, buf)
		if err != nil {
			return nil, err
		}
		data = buf[:n:n]
	}
	v.mu.Lock()
	f.offset = off + int64(len(data))
	v.mu.Unlock()
	return data, nil
}

// Write writes at the descriptor's offset, advancing it.
func (v *VFS) Write(ctx context.Context, fd FD, data []byte) (int, error) {
	f, err := v.lookup(fd)
	if err != nil {
		return 0, err
	}
	v.mu.Lock()
	off := f.offset
	path := f.path
	isShadow := f.shadow != nil
	v.mu.Unlock()
	if isShadow {
		v.mu.Lock()
		end := off + int64(len(data))
		for int64(len(f.shadow)) < end {
			f.shadow = append(f.shadow, 0)
		}
		copy(f.shadow[off:end], data)
		f.offset = end
		v.mu.Unlock()
		return len(data), nil
	}
	n, err := v.fs.Write(ctx, path, off, data)
	if err != nil {
		return n, err
	}
	v.mu.Lock()
	f.offset = off + int64(n)
	v.mu.Unlock()
	return n, nil
}

// StatFD stats through the descriptor.
func (v *VFS) StatFD(ctx context.Context, fd FD) (fsapi.Info, error) {
	f, err := v.lookup(fd)
	if err != nil {
		return fsapi.Info{}, err
	}
	v.mu.Lock()
	shadow := f.shadow
	path := f.path
	kind := f.kind
	v.mu.Unlock()
	if shadow != nil {
		return fsapi.Info{Kind: kind, Size: int64(len(shadow))}, nil
	}
	return v.fs.Stat(ctx, path)
}

// ReaddirFD lists a directory through the descriptor via a full path
// traversal — the linearizable FD-based readdir of §5.4.
func (v *VFS) ReaddirFD(ctx context.Context, fd FD) ([]string, error) {
	f, err := v.lookup(fd)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	path := f.path
	v.mu.Unlock()
	return v.fs.Readdir(ctx, path)
}

// Unlink removes a file; if any descriptor has it open, the descriptor is
// detached onto a shadow copy first (POSIX read-after-unlink, via the
// FUSE temporary-file behaviour the paper describes).
func (v *VFS) Unlink(ctx context.Context, path string) error {
	// Snapshot current content in case a descriptor needs detaching; read
	// before the unlink to keep the copy coherent.
	var content []byte
	var haveContent bool
	v.mu.Lock()
	anyOpen := false
	for _, f := range v.table {
		if f.path == path && f.shadow == nil {
			anyOpen = true
			break
		}
	}
	v.mu.Unlock()
	if anyOpen {
		if info, err := v.fs.Stat(ctx, path); err == nil && info.Kind == spec.KindFile {
			if data, err := fsapi.ReadAll(ctx, v.fs, path, 0, int(info.Size)); err == nil {
				content = data
				haveContent = true
			}
		}
	}
	if err := v.fs.Unlink(ctx, path); err != nil {
		return err
	}
	if haveContent {
		v.mu.Lock()
		// Duplicated descriptors share one openFile, so the shadow lands
		// once per description even if many FDs reach it.
		for _, f := range v.table {
			if f.path == path && f.shadow == nil {
				f.shadow = append([]byte(nil), content...)
			}
		}
		v.mu.Unlock()
	}
	return nil
}

// Path-based pass-throughs, so applications can use a single object.

// Mknod creates an empty file.
func (v *VFS) Mknod(ctx context.Context, path string) error { return v.fs.Mknod(ctx, path) }

// Mkdir creates an empty directory.
func (v *VFS) Mkdir(ctx context.Context, path string) error { return v.fs.Mkdir(ctx, path) }

// Rmdir removes an empty directory.
func (v *VFS) Rmdir(ctx context.Context, path string) error { return v.fs.Rmdir(ctx, path) }

// Rename moves src to dst.
func (v *VFS) Rename(ctx context.Context, src, dst string) error { return v.fs.Rename(ctx, src, dst) }

// Stat stats a path.
func (v *VFS) Stat(ctx context.Context, path string) (fsapi.Info, error) {
	return v.fs.Stat(ctx, path)
}

// Readdir lists a directory by path.
func (v *VFS) Readdir(ctx context.Context, path string) ([]string, error) {
	return v.fs.Readdir(ctx, path)
}

// OpenCount reports the number of open descriptors (tests).
func (v *VFS) OpenCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.table)
}

// Refs reports how many descriptors share fd's open-file description
// (tests and debugging).
func (v *VFS) Refs(fd FD) (int, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	f, ok := v.table[fd]
	if !ok {
		return 0, fserr.ErrBadFD
	}
	return f.refs, nil
}
