package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/atomfs"
	"repro/internal/core"
	"repro/internal/fserr"
	"repro/internal/fuse"
	"repro/internal/memfs"
	"repro/internal/spec"
)

func newVFS(t *testing.T) *VFS {
	t.Helper()
	return New(atomfs.New())
}

func TestOpenReadWrite(t *testing.T) {
	v := newVFS(t)
	fd, err := v.Create(tctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := v.Write(tctx, fd, []byte("hello ")); err != nil || n != 6 {
		t.Fatalf("write = %d %v", n, err)
	}
	if n, err := v.Write(tctx, fd, []byte("world")); err != nil || n != 5 {
		t.Fatalf("write = %d %v", n, err)
	}
	if err := v.Seek(fd, 0); err != nil {
		t.Fatal(err)
	}
	data, err := v.Read(tctx, fd, 100)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("read = %q %v", data, err)
	}
	// Offset advanced to EOF; next read is empty.
	data, err = v.Read(tctx, fd, 10)
	if err != nil || len(data) != 0 {
		t.Fatalf("read at EOF = %q %v", data, err)
	}
	if err := v.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(fd); !errors.Is(err, fserr.ErrBadFD) {
		t.Fatalf("double close = %v", err)
	}
}

func TestBadFD(t *testing.T) {
	v := newVFS(t)
	if _, err := v.Read(tctx, 99, 1); !errors.Is(err, fserr.ErrBadFD) {
		t.Fatalf("read bad fd = %v", err)
	}
	if _, err := v.Write(tctx, 99, []byte("x")); !errors.Is(err, fserr.ErrBadFD) {
		t.Fatalf("write bad fd = %v", err)
	}
	if _, err := v.Open(tctx, "/missing"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("open missing = %v", err)
	}
}

func TestReadAfterUnlink(t *testing.T) {
	v := newVFS(t)
	fd, err := v.Create(tctx, "/doomed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(tctx, fd, []byte("still here")); err != nil {
		t.Fatal(err)
	}
	if err := v.Unlink(tctx, "/doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Stat(tctx, "/doomed"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatal("file still visible by path")
	}
	// The descriptor survives on the shadow copy.
	if err := v.Seek(fd, 0); err != nil {
		t.Fatal(err)
	}
	data, err := v.Read(tctx, fd, 100)
	if err != nil || string(data) != "still here" {
		t.Fatalf("read after unlink = %q %v", data, err)
	}
	// Writes through the detached descriptor also work.
	if _, err := v.Write(tctx, fd, []byte("!")); err != nil {
		t.Fatal(err)
	}
	info, err := v.StatFD(tctx, fd)
	if err != nil || info.Size != 11 {
		t.Fatalf("statfd = %+v %v", info, err)
	}
	v.Close(fd)
}

func TestReaddirFDTraversesPath(t *testing.T) {
	v := newVFS(t)
	for _, d := range []string{"/a", "/a/b"} {
		if err := v.Mkdir(tctx, d); err != nil {
			t.Fatal(err)
		}
	}
	fd, err := v.Open(tctx, "/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Mknod(tctx, "/a/b/x"); err != nil {
		t.Fatal(err)
	}
	names, err := v.ReaddirFD(tctx, fd)
	if err != nil || len(names) != 1 || names[0] != "x" {
		t.Fatalf("readdirfd = %v %v", names, err)
	}
	// After a rename of an ancestor, the stale FD path reports ENOENT —
	// consistent with the path-traversal design of §5.4.
	if err := v.Rename(tctx, "/a", "/z"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReaddirFD(tctx, fd); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("stale-path readdir = %v, want ENOENT", err)
	}
	v.Close(fd)
}

func TestSeekNegative(t *testing.T) {
	v := newVFS(t)
	fd, _ := v.Create(tctx, "/f")
	if err := v.Seek(fd, -1); !errors.Is(err, fserr.ErrInvalid) {
		t.Fatalf("seek -1 = %v", err)
	}
}

func TestFDExhaustion(t *testing.T) {
	v := New(memfs.New())
	if err := v.Mknod(tctx, "/f"); err != nil {
		t.Fatal(err)
	}
	var fds []FD
	for {
		fd, err := v.Open(tctx, "/f")
		if err != nil {
			if !errors.Is(err, fserr.ErrTooManyFiles) {
				t.Fatalf("unexpected exhaustion error: %v", err)
			}
			break
		}
		fds = append(fds, fd)
	}
	if len(fds) != MaxOpenFiles {
		t.Fatalf("opened %d, want %d", len(fds), MaxOpenFiles)
	}
	v.Close(fds[0])
	if _, err := v.Open(tctx, "/f"); err != nil {
		t.Fatalf("open after close failed: %v", err)
	}
}

func TestDirKindRecorded(t *testing.T) {
	v := newVFS(t)
	v.Mkdir(tctx, "/d")
	fd, err := v.Open(tctx, "/d")
	if err != nil {
		t.Fatal(err)
	}
	info, err := v.StatFD(tctx, fd)
	if err != nil || info.Kind != spec.KindDir {
		t.Fatalf("statfd dir = %+v %v", info, err)
	}
}

func TestSparseReadThroughFD(t *testing.T) {
	v := newVFS(t)
	fd, _ := v.Create(tctx, "/s")
	v.Seek(fd, 10000)
	v.Write(tctx, fd, []byte("end"))
	v.Seek(fd, 0)
	data, err := v.Read(tctx, fd, 100)
	if err != nil || !bytes.Equal(data, make([]byte, 100)) {
		t.Fatalf("sparse head = %v %v", data[:5], err)
	}
}

// TestConcurrentFDs: many goroutines churning descriptors over a
// monitored AtomFS — the FD layer must be thread-safe and the underlying
// path-based operations stay verified.
func TestConcurrentFDs(t *testing.T) {
	mon := core.NewMonitor(core.Config{CheckGoodAFS: true})
	fs := atomfs.New(atomfs.WithMonitor(mon))
	v := New(fs)
	if err := v.Mkdir(tctx, "/d"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				p := fmt.Sprintf("/d/w%d-%d", w, i%4)
				fd, err := v.Create(tctx, p)
				if err != nil {
					// A sibling worker may own this name; open instead.
					fd, err = v.Open(tctx, p)
					if err != nil {
						continue
					}
				}
				v.Write(tctx, fd, []byte("data"))
				v.Seek(fd, 0)
				v.Read(tctx, fd, 4)
				v.StatFD(tctx, fd)
				v.Close(fd)
				if i%8 == 0 {
					v.Unlink(tctx, p)
				}
			}
		}(w)
	}
	wg.Wait()
	if v.OpenCount() != 0 {
		t.Fatalf("leaked %d descriptors", v.OpenCount())
	}
	for _, viol := range mon.Violations() {
		t.Errorf("violation: %s", viol)
	}
	if err := mon.Quiesce(); err != nil {
		t.Fatal(err)
	}
}

// TestVFSOverRemoteMount: the descriptor layer composes with the
// FUSE-like transport (FDs on the client side of a mount).
func TestVFSOverRemoteMount(t *testing.T) {
	client, srv := fuse.Pipe(atomfs.New())
	defer srv.Close()
	defer client.Close()
	v := New(client)
	fd, err := v.Create(tctx, "/remote-file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(tctx, fd, []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	if err := v.Seek(fd, 5); err != nil {
		t.Fatal(err)
	}
	data, err := v.Read(tctx, fd, 3)
	if err != nil || string(data) != "the" {
		t.Fatalf("read = %q %v", data, err)
	}
	v.Close(fd)
}

// TestDupSharesDescription: dup(2) semantics — duplicates share one
// open-file description, so the offset and any post-unlink shadow are
// common, and the description is released only on last close.
func TestDupSharesDescription(t *testing.T) {
	v := newVFS(t)
	fd, err := v.Create(tctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(tctx, fd, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	dup, err := v.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	if dup == fd {
		t.Fatalf("dup returned the same descriptor %d", fd)
	}
	if n, err := v.Refs(fd); err != nil || n != 2 {
		t.Fatalf("refs = %d %v, want 2", n, err)
	}

	// The offset is shared: a read through one descriptor advances the
	// other's position.
	if err := v.Seek(fd, 0); err != nil {
		t.Fatal(err)
	}
	if data, err := v.Read(tctx, fd, 3); err != nil || string(data) != "abc" {
		t.Fatalf("read via fd = %q %v", data, err)
	}
	if data, err := v.Read(tctx, dup, 3); err != nil || string(data) != "def" {
		t.Fatalf("read via dup = %q %v (offset not shared)", data, err)
	}

	// Unlink-while-open: the shadow lands once on the shared description
	// and a write through one duplicate is visible through the other.
	if err := v.Unlink(tctx, "/f"); err != nil {
		t.Fatal(err)
	}
	if err := v.Seek(fd, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(tctx, fd, []byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	if err := v.Seek(dup, 0); err != nil {
		t.Fatal(err)
	}
	if data, err := v.Read(tctx, dup, 6); err != nil || string(data) != "XYZdef" {
		t.Fatalf("read shadow via dup = %q %v", data, err)
	}

	// Closing one descriptor keeps the description (and shadow) alive.
	if err := v.Close(fd); err != nil {
		t.Fatal(err)
	}
	if n, err := v.Refs(dup); err != nil || n != 1 {
		t.Fatalf("refs after close = %d %v, want 1", n, err)
	}
	if err := v.Seek(dup, 0); err != nil {
		t.Fatal(err)
	}
	if data, err := v.Read(tctx, dup, 3); err != nil || string(data) != "XYZ" {
		t.Fatalf("read after sibling close = %q %v", data, err)
	}

	// Last close releases the description; both descriptors are dead.
	if err := v.Close(dup); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Refs(dup); !errors.Is(err, fserr.ErrBadFD) {
		t.Fatalf("refs on closed dup = %v", err)
	}
	if _, err := v.Read(tctx, fd, 1); !errors.Is(err, fserr.ErrBadFD) {
		t.Fatalf("read on closed fd = %v", err)
	}
	if v.OpenCount() != 0 {
		t.Fatalf("open count = %d, want 0", v.OpenCount())
	}
}

// TestDupBadFD: duplicating a closed or never-opened descriptor fails.
func TestDupBadFD(t *testing.T) {
	v := newVFS(t)
	if _, err := v.Dup(99); !errors.Is(err, fserr.ErrBadFD) {
		t.Fatalf("dup bad fd = %v", err)
	}
	fd, err := v.Create(tctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Dup(fd); !errors.Is(err, fserr.ErrBadFD) {
		t.Fatalf("dup closed fd = %v", err)
	}
}
