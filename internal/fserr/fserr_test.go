package fserr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestErrnoRoundTrip(t *testing.T) {
	sentinels := []error{
		ErrNotExist, ErrExist, ErrNotDir, ErrIsDir, ErrNotEmpty, ErrInvalid,
		ErrBadFD, ErrNoSpace, ErrNameTooLong, ErrBusy, ErrCrossDevice,
		ErrPermission, ErrTooManyFiles,
		context.Canceled, context.DeadlineExceeded,
	}
	for _, err := range sentinels {
		no := Errno(err)
		if no == 0 {
			t.Errorf("Errno(%v) = 0", err)
		}
		back := FromErrno(no)
		if back != err {
			t.Errorf("FromErrno(Errno(%v)) = %v", err, back)
		}
	}
}

func TestErrnoNil(t *testing.T) {
	if Errno(nil) != 0 {
		t.Error("Errno(nil) != 0")
	}
	if FromErrno(0) != nil {
		t.Error("FromErrno(0) != nil")
	}
}

func TestErrnoWrapped(t *testing.T) {
	err := Wrap("mkdir", "/a/b", ErrNotExist)
	if Errno(err) != ENOENT {
		t.Errorf("Errno(wrapped) = %d, want ENOENT", Errno(err))
	}
	if !errors.Is(err, ErrNotExist) {
		t.Error("wrapped error does not match sentinel")
	}
	want := "mkdir /a/b: no such file or directory"
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestErrnoUnknown(t *testing.T) {
	if Errno(errors.New("mystery")) != EINVAL {
		t.Error("unknown error should map to EINVAL")
	}
	if FromErrno(9999) == nil {
		t.Error("unknown errno should produce an error")
	}
}

func TestWrapNil(t *testing.T) {
	if Wrap("op", "/p", nil) != nil {
		t.Error("Wrap(nil) should be nil")
	}
}

// TestContextErrnos pins the wire values for the context outcomes and the
// errors.Is round trip a remote client relies on: a server that aborts an
// op on a cancelled context replies ECANCELED, and the client-side
// FromErrno restores an error that still matches context.Canceled.
func TestContextErrnos(t *testing.T) {
	if Errno(context.Canceled) != ECANCELED || ECANCELED != 125 {
		t.Fatalf("Errno(Canceled) = %d, want 125", Errno(context.Canceled))
	}
	if Errno(context.DeadlineExceeded) != ETIMEDOUT || ETIMEDOUT != 110 {
		t.Fatalf("Errno(DeadlineExceeded) = %d, want 110", Errno(context.DeadlineExceeded))
	}
	// Wrapped context errors map too (layered ops annotate before crossing).
	wrapped := fmt.Errorf("read /a/b: %w", context.Canceled)
	if Errno(wrapped) != ECANCELED {
		t.Fatalf("Errno(wrapped Canceled) = %d", Errno(wrapped))
	}
	if !errors.Is(FromErrno(ECANCELED), context.Canceled) {
		t.Fatal("FromErrno(ECANCELED) does not match context.Canceled")
	}
	if !errors.Is(FromErrno(ETIMEDOUT), context.DeadlineExceeded) {
		t.Fatal("FromErrno(ETIMEDOUT) does not match context.DeadlineExceeded")
	}
}
