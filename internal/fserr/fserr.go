// Package fserr defines the POSIX-style error values shared by every file
// system implementation in this repository.
//
// The values mirror the errno names used by the AtomFS paper's interfaces
// (mknod, mkdir, rmdir, unlink, rename, stat, ...). They are plain sentinel
// errors so callers can compare with errors.Is, plus a small errno mapping
// used by the FUSE-like wire protocol.
package fserr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors. Each corresponds to a POSIX errno of the same name.
var (
	ErrNotExist     = errors.New("no such file or directory") // ENOENT
	ErrExist        = errors.New("file exists")               // EEXIST
	ErrNotDir       = errors.New("not a directory")           // ENOTDIR
	ErrIsDir        = errors.New("is a directory")            // EISDIR
	ErrNotEmpty     = errors.New("directory not empty")       // ENOTEMPTY
	ErrInvalid      = errors.New("invalid argument")          // EINVAL
	ErrBadFD        = errors.New("bad file descriptor")       // EBADF
	ErrNoSpace      = errors.New("no space left on device")   // ENOSPC
	ErrNameTooLong  = errors.New("file name too long")        // ENAMETOOLONG
	ErrBusy         = errors.New("device or resource busy")   // EBUSY
	ErrCrossDevice  = errors.New("invalid cross-device link") // EXDEV
	ErrPermission   = errors.New("operation not permitted")   // EPERM
	ErrTooManyFiles = errors.New("too many open files")       // EMFILE
)

// Errno numbers (Linux x86-64 values) used on the wire by internal/fuse.
const (
	ENOENT       = 2
	EPERM        = 1
	EBADF        = 9
	EBUSY        = 16
	EEXIST       = 17
	EXDEV        = 18
	ENOTDIR      = 20
	EISDIR       = 21
	EINVAL       = 22
	EMFILE       = 24
	ENOSPC       = 28
	ENAMETOOLONG = 36
	ENOTEMPTY    = 39
	ETIMEDOUT    = 110
	ECANCELED    = 125
)

var toErrno = map[error]int32{
	ErrNotExist:     ENOENT,
	ErrExist:        EEXIST,
	ErrNotDir:       ENOTDIR,
	ErrIsDir:        EISDIR,
	ErrNotEmpty:     ENOTEMPTY,
	ErrInvalid:      EINVAL,
	ErrBadFD:        EBADF,
	ErrNoSpace:      ENOSPC,
	ErrNameTooLong:  ENAMETOOLONG,
	ErrBusy:         EBUSY,
	ErrCrossDevice:  EXDEV,
	ErrPermission:   EPERM,
	ErrTooManyFiles: EMFILE,
	// Context outcomes cross the wire as errnos too, so a remote client
	// sees the same sentinels (errors.Is(err, context.Canceled) holds
	// after an Errno/FromErrno round trip).
	context.Canceled:         ECANCELED,
	context.DeadlineExceeded: ETIMEDOUT,
}

var fromErrno = func() map[int32]error {
	m := make(map[int32]error, len(toErrno))
	for err, no := range toErrno {
		m[no] = err
	}
	return m
}()

// Errno converts err to its errno value. A nil error maps to 0; an error
// that wraps one of the sentinels maps to that sentinel's errno; anything
// else maps to EINVAL.
func Errno(err error) int32 {
	if err == nil {
		return 0
	}
	for sentinel, no := range toErrno {
		if errors.Is(err, sentinel) {
			return no
		}
	}
	return EINVAL
}

// FromErrno converts a wire errno back to the corresponding sentinel error.
// 0 maps to nil; an unknown errno yields a descriptive opaque error.
func FromErrno(no int32) error {
	if no == 0 {
		return nil
	}
	if err, ok := fromErrno[no]; ok {
		return err
	}
	return fmt.Errorf("errno %d", no)
}

// A PathError annotates an error with the operation and path that caused
// it, in the manner of os.PathError.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return e.Op + " " + e.Path + ": " + e.Err.Error() }

// Unwrap supports errors.Is against the wrapped sentinel.
func (e *PathError) Unwrap() error { return e.Err }

// Wrap returns err annotated with op and path, or nil if err is nil.
func Wrap(op, path string, err error) error {
	if err == nil {
		return nil
	}
	return &PathError{Op: op, Path: path, Err: err}
}
