package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/obs"
	"repro/internal/spec"
)

// RecoveryInfo describes what recovery found and did.
type RecoveryInfo struct {
	// SuperblockVersion is the version of the superblock used (0 = no
	// valid superblock; recovery started from an empty state at logBase).
	SuperblockVersion uint64
	// CkptSeq is the seq the loaded checkpoint covered (0 = none).
	CkptSeq uint64
	// LastSeq is the seq of the last record accepted by the replay scan.
	LastSeq uint64
	// Replayed is how many tail records were applied on the checkpoint.
	Replayed int
	// StopOffset is the device offset at which the scan stopped (end of
	// log, a torn record, or garbage).
	StopOffset int64
}

func (i RecoveryInfo) String() string {
	return fmt.Sprintf("wal: recovered to seq %d (checkpoint %d + %d replayed records, sb v%d, scan stopped at %d)",
		i.LastSeq, i.CkptSeq, i.Replayed, i.SuperblockVersion, i.StopOffset)
}

// Recover reads the device and rebuilds the abstract state: the newest
// valid superblock selects a checkpoint, the checkpoint payload decodes
// to the base tree, and the record tail from logStart replays on top.
// The scan accepts records while magic, CRC, and seq continuity hold and
// stops at the first violation — the committed-prefix semantics torn
// writes get. The recovered state is checked for well-formedness
// (GoodAFS) before being returned; reg (optional) receives the
// wal_recoveries_total and wal_replayed_records_total counters.
//
// Recover is read-only: it never writes the device and may run on a
// crashed one.
func Recover(dev *Device, reg *obs.Registry) (*spec.AFS, RecoveryInfo, error) {
	var info RecoveryInfo
	if reg != nil {
		reg.Counter("wal_recoveries_total").Inc(0)
	}

	// Pick the newest valid superblock of the two slots.
	var (
		best    []byte
		bestVer uint64
	)
	for slot := int64(0); slot < 2; slot++ {
		sb := make([]byte, len(sbMagic)+5*8+crcSize)
		if err := dev.ReadAt(slot*sbSlotSize, sb); err != nil {
			return nil, info, err
		}
		if string(sb[:len(sbMagic)]) != string(sbMagic[:]) {
			continue
		}
		body, sum := sb[:len(sb)-crcSize], binary.LittleEndian.Uint32(sb[len(sb)-crcSize:])
		if crc32.ChecksumIEEE(body) != sum {
			continue
		}
		ver := binary.LittleEndian.Uint64(sb[len(sbMagic):])
		if ver > bestVer {
			best, bestVer = sb, ver
		}
	}

	afs := spec.New()
	logStart := int64(logBase)
	if best != nil {
		f := best[len(sbMagic)+8:]
		ckptOff := int64(binary.LittleEndian.Uint64(f[0:8]))
		ckptLen := int64(binary.LittleEndian.Uint64(f[8:16]))
		ckptSeq := binary.LittleEndian.Uint64(f[16:24])
		logStart = int64(binary.LittleEndian.Uint64(f[24:32]))
		base, err := readCheckpoint(dev, ckptOff, ckptLen, ckptSeq)
		if err != nil {
			// A sealed superblock pointing at a bad checkpoint is real
			// corruption, not a torn tail: fail recovery rather than
			// silently dropping committed state.
			return nil, info, fmt.Errorf("wal: checkpoint at %d (seq %d): %w", ckptOff, ckptSeq, err)
		}
		afs = base
		info.SuperblockVersion = bestVer
		info.CkptSeq = ckptSeq
		info.LastSeq = ckptSeq
	}

	// Replay the tail.
	off := logStart
	seq := info.LastSeq
	for {
		op, args, recLen, ok := readRecord(dev, off, seq+1)
		if !ok {
			break
		}
		ret, _ := afs.Apply(op, args)
		if ret.Err != nil {
			// Journal order is a linearization order, so a journaled Aop
			// re-fails only if the log (or checkpoint) is corrupt in a way
			// the checksums missed. Surface it; the crash fuzzer treats
			// this as a finding.
			return nil, info, fmt.Errorf("wal: replay of seq %d (%s %s) failed: %w",
				seq+1, op, args.String(), ret.Err)
		}
		seq++
		off += recLen
		info.Replayed++
	}
	info.LastSeq = seq
	info.StopOffset = off
	if reg != nil {
		reg.Counter("wal_replayed_records_total").Add(0, uint64(info.Replayed))
	}

	if err := afs.GoodAFS(); err != nil {
		return nil, info, fmt.Errorf("wal: recovered state ill-formed: %w", err)
	}
	return afs, info, nil
}

func readCheckpoint(dev *Device, off, length int64, wantSeq uint64) (*spec.AFS, error) {
	if length < ckptHdrSize+crcSize || length > maxPayload {
		return nil, fmt.Errorf("implausible length %d", length)
	}
	blob := make([]byte, length)
	if err := dev.ReadAt(off, blob); err != nil {
		return nil, err
	}
	if blob[0] != ckptMagic {
		return nil, fmt.Errorf("bad magic %#x", blob[0])
	}
	body, sum := blob[:length-crcSize], binary.LittleEndian.Uint32(blob[length-crcSize:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("checksum mismatch")
	}
	seq := binary.LittleEndian.Uint64(blob[1:9])
	if seq != wantSeq {
		return nil, fmt.Errorf("seq %d, superblock says %d", seq, wantSeq)
	}
	plen := int64(binary.LittleEndian.Uint32(blob[9:13]))
	if ckptHdrSize+plen+crcSize != length {
		return nil, fmt.Errorf("payload length %d inconsistent with blob length %d", plen, length)
	}
	sub, rest, err := spec.DecodeSubTree(blob[ckptHdrSize : ckptHdrSize+plen])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%d trailing payload bytes", len(rest))
	}
	return spec.FromSubTree(sub)
}

// readRecord scans one record at off, returning ok=false at anything
// that is not a whole, checksummed, seq-continuous record.
func readRecord(dev *Device, off int64, wantSeq uint64) (spec.Op, spec.Args, int64, bool) {
	hdr := make([]byte, recHdrSize)
	if dev.ReadAt(off, hdr) != nil || hdr[0] != recMagic {
		return 0, spec.Args{}, 0, false
	}
	op := spec.Op(hdr[1])
	seq := binary.LittleEndian.Uint64(hdr[2:10])
	plen := int64(binary.LittleEndian.Uint32(hdr[10:14]))
	if seq != wantSeq || plen > maxPayload {
		return 0, spec.Args{}, 0, false
	}
	rec := make([]byte, recHdrSize+plen+crcSize)
	if dev.ReadAt(off, rec) != nil {
		return 0, spec.Args{}, 0, false
	}
	body := rec[:len(rec)-crcSize]
	sum := binary.LittleEndian.Uint32(rec[len(rec)-crcSize:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, spec.Args{}, 0, false
	}
	args, rest, err := spec.DecodeArgs(rec[recHdrSize : recHdrSize+plen])
	if err != nil || len(rest) != 0 {
		return 0, spec.Args{}, 0, false
	}
	return op, args, int64(len(rec)), true
}
