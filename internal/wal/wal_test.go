package wal

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/obs"
	"repro/internal/spec"
)

func newDev(t *testing.T) *Device {
	t.Helper()
	return NewDevice(block.NewStore(4096), 0)
}

type step struct {
	op   spec.Op
	args spec.Args
}

// walScript is a deterministic all-succeeding op sequence covering every
// mutating op kind the journal will see, including the cross-volume
// subtree payloads (OpDetach/OpAttach).
func walScript() []step {
	sub := &spec.SubTree{Kind: spec.KindDir, Children: map[string]*spec.SubTree{
		"inner": {Kind: spec.KindFile, Data: []byte("carried")},
	}}
	return []step{
		{spec.OpMkdir, spec.Args{Path: "/d"}},
		{spec.OpMknod, spec.Args{Path: "/d/f"}},
		{spec.OpWrite, spec.Args{Path: "/d/f", Off: 0, Data: []byte("hello world")}},
		{spec.OpMkdir, spec.Args{Path: "/e"}},
		{spec.OpRename, spec.Args{Path: "/d/f", Path2: "/e/g"}},
		{spec.OpWrite, spec.Args{Path: "/e/g", Off: 5, Data: []byte("-patch")}},
		{spec.OpTruncate, spec.Args{Path: "/e/g", Off: 8}},
		{spec.OpAttach, spec.Args{Path: "/d/moved", Sub: sub}},
		{spec.OpMknod, spec.Args{Path: "/d/moved/sibling"}},
		{spec.OpDetach, spec.Args{Path: "/d/moved"}},
		{spec.OpMkdir, spec.Args{Path: "/d/x"}},
		{spec.OpRmdir, spec.Args{Path: "/d/x"}},
		{spec.OpMknod, spec.Args{Path: "/gone"}},
		{spec.OpUnlink, spec.Args{Path: "/gone"}},
		{spec.OpMkdir, spec.Args{Path: "/tail"}},
	}
}

// goldenKeys returns the reference state key after each prefix of the
// script: goldenKeys()[i] is the state after i ops (index 0 = empty).
func goldenKeys(t *testing.T, script []step) []string {
	t.Helper()
	ref := spec.New()
	keys := []string{ref.Key()}
	for i, s := range script {
		if ret, _ := ref.Apply(s.op, s.args); ret.Err != nil {
			t.Fatalf("golden step %d (%s): %v", i, s.op, ret.Err)
		}
		keys = append(keys, ref.Key())
	}
	return keys
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dev := newDev(t)
	reg := obs.NewRegistry()
	l := NewLog(dev, Config{Obs: reg})
	script := walScript()
	keys := goldenKeys(t, script)

	for i, s := range script {
		tk, err := l.Append(s.op, s.args)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	if got := l.DurableSeq(); got != uint64(len(script)) {
		t.Fatalf("durableSeq = %d, want %d", got, len(script))
	}

	afs, info, err := Recover(dev, reg)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if info.LastSeq != uint64(len(script)) || info.Replayed != len(script) || info.CkptSeq != 0 {
		t.Fatalf("info = %+v", info)
	}
	if afs.Key() != keys[len(script)] {
		t.Fatalf("recovered key mismatch:\n%s\n%s", afs.Key(), keys[len(script)])
	}
	if afs.Key() != l.ShadowKey() {
		t.Fatal("recovered state diverges from shadow")
	}
	if reg.Counter("wal_appends_total").Value() != uint64(len(script)) {
		t.Fatal("wal_appends_total not counted")
	}
	if reg.Counter("wal_recoveries_total").Value() != 1 {
		t.Fatal("wal_recoveries_total not counted")
	}
	if reg.Counter("wal_replayed_records_total").Value() != uint64(len(script)) {
		t.Fatal("wal_replayed_records_total not counted")
	}
	if info.String() == "" {
		t.Fatal("empty info string")
	}
}

func TestRecoverEmptyDevice(t *testing.T) {
	afs, info, err := Recover(newDev(t), nil)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if info.LastSeq != 0 || info.Replayed != 0 || info.SuperblockVersion != 0 {
		t.Fatalf("info = %+v", info)
	}
	if afs.Key() != spec.New().Key() {
		t.Fatal("empty recovery is not the empty state")
	}
}

func TestNoGroupInlineDurability(t *testing.T) {
	dev := newDev(t)
	l := NewLog(dev, Config{NoGroup: true})
	if _, err := l.Append(spec.OpMkdir, spec.Args{Path: "/a"}); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Durable without any Wait: NoGroup syncs inline.
	if l.DurableSeq() != 1 {
		t.Fatalf("durableSeq = %d, want 1", l.DurableSeq())
	}
	if dev.Syncs() != 1 {
		t.Fatalf("syncs = %d, want 1", dev.Syncs())
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	// A measurable sync latency makes concurrent committers pile up
	// behind the in-flight flush, so the follower batches are real.
	dev := NewDevice(block.NewStore(4096), 2*time.Millisecond)
	reg := obs.NewRegistry()
	l := NewLog(dev, Config{Obs: reg})

	const writers, perWriter = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				name := string(rune('a'+w)) + string(rune('0'+i))
				tk, err := l.Append(spec.OpMknod, spec.Args{Path: "/" + name})
				if err != nil {
					errs <- err
					return
				}
				if err := tk.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("writer: %v", err)
	}

	total := int64(writers * perWriter)
	if dev.Syncs() >= total {
		t.Fatalf("group commit did not coalesce: %d syncs for %d records", dev.Syncs(), total)
	}
	if got := l.DurableSeq(); got != uint64(total) {
		t.Fatalf("durableSeq = %d, want %d", got, total)
	}
	if c := reg.Counter("wal_commits_total").Value(); c == 0 || int64(c) != dev.Syncs() {
		t.Fatalf("wal_commits_total = %d, syncs = %d", c, dev.Syncs())
	}
	if b := reg.Counter("wal_batched_records_total").Value(); b != uint64(total) {
		t.Fatalf("wal_batched_records_total = %d, want %d", b, total)
	}

	afs, info, err := Recover(dev, nil)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if info.LastSeq != uint64(total) {
		t.Fatalf("recovered %d records, want %d", info.LastSeq, total)
	}
	if afs.Key() != l.ShadowKey() {
		t.Fatal("recovered state diverges from shadow")
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dev := newDev(t)
	reg := obs.NewRegistry()
	l := NewLog(dev, Config{CheckpointEvery: 4, Obs: reg})
	script := walScript()
	keys := goldenKeys(t, script)

	for i, s := range script {
		if _, err := l.Append(s.op, s.args); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if reg.Counter("wal_checkpoints_total").Value() == 0 {
		t.Fatal("no automatic checkpoints")
	}
	if err := l.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// A checkpoint makes the whole log durable without any Wait.
	if l.DurableSeq() != uint64(len(script)) {
		t.Fatalf("durableSeq = %d after checkpoint", l.DurableSeq())
	}

	afs, info, err := Recover(dev, reg)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if info.CkptSeq != uint64(len(script)) || info.Replayed != 0 {
		t.Fatalf("info = %+v, want pure-checkpoint recovery", info)
	}
	if info.SuperblockVersion == 0 {
		t.Fatal("no superblock used")
	}
	if afs.Key() != keys[len(script)] {
		t.Fatal("recovered key mismatch after checkpoints")
	}

	// Physical truncation: the device's footprint must stay small even
	// after many more checkpointed records (the pre-checkpoint prefix is
	// returned to the store).
	before := dev.BlocksMapped()
	for i := 0; i < 200; i++ {
		name := "/tail/n" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i%7))
		if _, err := l.Append(spec.OpMknod, spec.Args{Path: name}); err != nil {
			// Name collisions would make the shadow reject; keep names unique.
			t.Fatalf("append %d (%s): %v", i, name, err)
		}
	}
	if reg.Counter("wal_truncated_blocks_total").Value() == 0 {
		t.Fatal("checkpoints reclaimed no blocks")
	}
	after := dev.BlocksMapped()
	if after > before+64 {
		t.Fatalf("footprint grew unbounded: %d -> %d blocks", before, after)
	}
	afs2, _, err := Recover(dev, nil)
	if err != nil {
		t.Fatalf("recover after growth: %v", err)
	}
	if afs2.Key() != l.ShadowKey() {
		t.Fatal("post-truncation recovery diverges from shadow")
	}
}

func TestShadowDivergenceRejected(t *testing.T) {
	l := NewLog(newDev(t), Config{})
	if _, err := l.Append(spec.OpMkdir, spec.Args{Path: "/a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(spec.OpMkdir, spec.Args{Path: "/a"}); err == nil {
		t.Fatal("duplicate mkdir accepted by shadow")
	}
	// The journal itself is not broken by a caller-side divergence.
	if err := l.Broken(); err != nil {
		t.Fatalf("broken: %v", err)
	}
	if _, err := l.Append(spec.OpMknod, spec.Args{Path: "/a/f"}); err != nil {
		t.Fatalf("append after divergence: %v", err)
	}
}

// runToCrash replays the script on a fresh log over dev until the device
// dies (or the script ends), returning the highest seq acknowledged
// durable. ckptEvery exercises crash-during-checkpoint paths.
func runToCrash(t *testing.T, dev *Device, script []step, ckptEvery int) (acked uint64) {
	t.Helper()
	l := NewLog(dev, Config{CheckpointEvery: ckptEvery})
	for _, s := range script {
		tk, err := l.Append(s.op, s.args)
		if err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("append: %v", err)
			}
			return acked
		}
		if err := tk.Wait(); err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("wait: %v", err)
			}
			return acked
		}
		acked = tk.seq
	}
	return acked
}

// TestCrashEveryByte is the exhaustive single-package crash sweep: for
// every cumulative write-stream offset k (every possible torn point,
// including mid-record, post-append/pre-flush, mid-checkpoint and
// mid-superblock cuts), crash the run at k and require recovery to land
// in a golden prefix state no older than what was acknowledged durable.
func TestCrashEveryByte(t *testing.T) {
	script := walScript()
	keys := goldenKeys(t, script)
	for _, ckptEvery := range []int{0, 3} {
		// Dry run to learn the write extent.
		dry := newDev(t)
		runToCrash(t, dry, script, ckptEvery)
		total := dry.Written()
		if total == 0 {
			t.Fatal("dry run wrote nothing")
		}
		for k := int64(0); k <= total; k++ {
			dev := newDev(t)
			dev.CrashAt(k)
			acked := runToCrash(t, dev, script, ckptEvery)
			afs, info, err := Recover(dev, nil)
			if err != nil {
				t.Fatalf("ckptEvery=%d crash=%d: recover: %v", ckptEvery, k, err)
			}
			if info.LastSeq < acked {
				t.Fatalf("ckptEvery=%d crash=%d: durability violation: acked seq %d, recovered seq %d",
					ckptEvery, k, acked, info.LastSeq)
			}
			if int(info.LastSeq) >= len(keys) {
				t.Fatalf("ckptEvery=%d crash=%d: recovered impossible seq %d", ckptEvery, k, info.LastSeq)
			}
			if afs.Key() != keys[info.LastSeq] {
				t.Fatalf("ckptEvery=%d crash=%d: recovered state is not the seq-%d golden prefix",
					ckptEvery, k, info.LastSeq)
			}
		}
	}
}

func TestDeviceCrashSemantics(t *testing.T) {
	dev := newDev(t)
	dev.CrashAt(5)
	if err := dev.WriteAt(0, []byte("abc")); err != nil {
		t.Fatalf("pre-crash write: %v", err)
	}
	// This write crosses the boundary: 2 bytes survive, then ErrCrashed.
	if err := dev.WriteAt(3, []byte("defg")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write: %v", err)
	}
	if !dev.Crashed() {
		t.Fatal("not crashed")
	}
	if err := dev.WriteAt(100, []byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatal("post-crash write accepted")
	}
	if err := dev.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatal("post-crash sync accepted")
	}
	// Reads still work and see exactly the surviving prefix.
	got := make([]byte, 8)
	if err := dev.ReadAt(0, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got[:5]) != "abcde" || got[5] != 0 || got[6] != 0 {
		t.Fatalf("surviving bytes = %q", got)
	}
	if dev.Written() != 5 {
		t.Fatalf("written = %d", dev.Written())
	}
	if len(dev.Marks()) != 2 {
		t.Fatalf("marks = %v", dev.Marks())
	}
}

func TestDeviceTruncateRange(t *testing.T) {
	dev := newDev(t)
	buf := make([]byte, 3*block.Size)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := dev.WriteAt(0, buf); err != nil {
		t.Fatal(err)
	}
	if dev.BlocksMapped() != 3 {
		t.Fatalf("mapped = %d", dev.BlocksMapped())
	}
	// Partial coverage frees nothing; whole blocks are reclaimed.
	if n := dev.TruncateRange(1, block.Size+1); n != 0 {
		t.Fatalf("partial range freed %d", n)
	}
	if n := dev.TruncateRange(block.Size, 3*block.Size); n != 2 {
		t.Fatalf("freed %d, want 2", n)
	}
	if dev.BlocksMapped() != 1 {
		t.Fatalf("mapped = %d after truncate", dev.BlocksMapped())
	}
	// Truncated ranges read as zero.
	got := make([]byte, 4)
	if err := dev.ReadAt(block.Size, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[3] != 0 {
		t.Fatalf("truncated read = %v", got)
	}
	if dev.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDeviceReproducible(t *testing.T) {
	run := func() uint64 {
		dev := newDev(t)
		l := NewLog(dev, Config{CheckpointEvery: 4})
		for _, s := range walScript() {
			if _, err := l.Append(s.op, s.args); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
		return dev.Fingerprint()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two identical runs fingerprint differently: %#x vs %#x", a, b)
	}
}

func TestZeroTicketWait(t *testing.T) {
	var tk Ticket
	if err := tk.Wait(); err != nil {
		t.Fatalf("zero ticket: %v", err)
	}
}

func TestBrokenLogRejectsAppends(t *testing.T) {
	dev := newDev(t)
	dev.CrashAt(0)
	l := NewLog(dev, Config{})
	if _, err := l.Append(spec.OpMkdir, spec.Args{Path: "/a"}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append on dead device: %v", err)
	}
	if err := l.Broken(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("broken not latched: %v", err)
	}
	if _, err := l.Append(spec.OpMkdir, spec.Args{Path: "/b"}); !errors.Is(err, ErrCrashed) {
		t.Fatal("append after broken accepted")
	}
	if err := l.CheckpointNow(); !errors.Is(err, ErrCrashed) {
		t.Fatal("checkpoint after broken accepted")
	}
}
