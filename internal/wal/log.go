package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/obs"
	"repro/internal/spec"
)

// On-device layout (DESIGN.md §14). All multi-byte integers are
// little-endian fixed width (the superblock and record headers must be
// scannable without a varint state machine).
//
//	[0,      4096)  superblock slot A
//	[4096,   8192)  superblock slot B
//	[8192,   ...)   append stream: records and checkpoint blobs
//
// Record:      0xA7 | op u8 | seq u64 | plen u32 | payload | crc u32
// Checkpoint:  0xC7 | seq u64 | plen u32 | payload | crc u32
// Superblock:  "AWALSB1\0" | version u64 | ckptOff u64 | ckptLen u64 |
//              ckptSeq u64 | logStart u64 | crc u32
//
// Every crc is IEEE CRC-32 over all preceding bytes of the structure, so
// a torn write — a prefix of the structure followed by zeros — is
// detected with overwhelming probability. The superblock is written to
// alternating slots (slot = version mod 2) and recovery takes the valid
// slot with the larger version: a crash mid-superblock leaves the other
// slot intact, so there is always a consistent (checkpoint, logStart)
// pair to recover from.
const (
	sbSlotSize = 4096
	logBase    = 2 * sbSlotSize

	recMagic  = 0xA7
	ckptMagic = 0xC7

	recHdrSize  = 1 + 1 + 8 + 4 // magic, op, seq, plen
	ckptHdrSize = 1 + 8 + 4     // magic, seq, plen
	crcSize     = 4

	// maxPayload bounds a scanned record's claimed payload so garbage
	// cannot induce giant allocations during recovery.
	maxPayload = 1 << 24
)

var sbMagic = [8]byte{'A', 'W', 'A', 'L', 'S', 'B', '1', 0}

// Config tunes a Log.
type Config struct {
	// CheckpointEvery takes a snapshot checkpoint after this many
	// appended records (0 = only explicit CheckpointNow calls).
	CheckpointEvery int
	// NoGroup disables the group-commit batcher: every append flushes the
	// device inline before returning — the naive per-op durability
	// baseline the benchmark suite compares against.
	NoGroup bool
	// Obs receives journal counters; nil runs unobserved.
	Obs *obs.Registry
}

// Log is the append-only operation journal. Appends are serialized by an
// internal mutex (callers append inside their own critical sections, so
// conflicting operations are already ordered; the mutex orders the
// commutative rest); durability waits ride the group-commit batcher.
type Log struct {
	dev *Device
	cfg Config

	mu  sync.Mutex // append/checkpoint section
	end int64      // next append offset
	seq uint64     // last assigned record seq
	// shadow is the journal's own abstract state: every appended record
	// applied in append order. By construction it equals the replay of
	// the whole log, which makes checkpoints (encoded from it) correct by
	// the same argument that makes replay correct. It also arms a cheap
	// divergence check: a record whose Aop fails against the shadow can
	// never have succeeded concretely in that order.
	shadow *spec.AFS
	// sinceCkpt counts records since the last checkpoint; version is the
	// next superblock version to write.
	sinceCkpt int
	version   uint64

	// Group commit: committers park on cond; one becomes the leader,
	// flushes the device once, and publishes durableSeq for the batch.
	// Lock order is strictly mu before cmu — Wait never touches mu while
	// holding cmu (the leader releases cmu around its seq read and its
	// flush), which is why broken lives here and not under mu.
	cmu        sync.Mutex
	cond       *sync.Cond
	flushing   bool
	durableSeq uint64
	broken     error // sticky first device error (ErrCrashed)

	// Counters (always non-nil; a private registry when Config.Obs is).
	cAppends *obs.Counter
	cCommits *obs.Counter
	cBatched *obs.Counter
	cCkpts   *obs.Counter
	cTruncBl *obs.Counter
	hBatch   *obs.Histogram
}

// NewLog formats a fresh journal on dev (any prior contents are ignored;
// use Recover to read them first).
func NewLog(dev *Device, cfg Config) *Log {
	l := &Log{
		dev:    dev,
		cfg:    cfg,
		end:    logBase,
		shadow: spec.New(),
	}
	l.cond = sync.NewCond(&l.cmu)
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l.cAppends = reg.Counter("wal_appends_total")
	l.cCommits = reg.Counter("wal_commits_total")
	l.cBatched = reg.Counter("wal_batched_records_total")
	l.cCkpts = reg.Counter("wal_checkpoints_total")
	l.cTruncBl = reg.Counter("wal_truncated_blocks_total")
	l.hBatch = reg.Histogram("wal_batch_records")
	return l
}

// Ticket is one append's claim on durability: Wait blocks until a flush
// covering the record has completed (possibly performed by this caller
// as the batch leader) and returns nil, or returns ErrCrashed if the
// device died first.
type Ticket struct {
	l   *Log
	seq uint64
}

// Append journals one committed operation and returns its durability
// ticket. It MUST be called at the operation's linearization point,
// while the operation still holds the locks that ordered it against
// conflicting operations: that is what makes journal order a valid
// linearization order (see DESIGN.md §14). The payload is serialized
// immediately, so argument buffers may be reused after return.
func (l *Log) Append(op spec.Op, args spec.Args) (Ticket, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.Broken(); err != nil {
		return Ticket{}, err
	}
	if ret, _ := l.shadow.Apply(op, args); ret.Err != nil {
		// The caller's concrete operation succeeded; the same Aop failing
		// against the shadow means the journal's order diverged from the
		// linearization order — a bug worth failing loudly over.
		return Ticket{}, fmt.Errorf("wal: shadow divergence at seq %d: %s %s: %w",
			l.seq+1, op, args.String(), ret.Err)
	}
	l.seq++
	rec := encodeRecord(op, l.seq, args)
	if err := l.dev.WriteAt(l.end, rec); err != nil {
		l.fail(err)
		return Ticket{}, err
	}
	l.end += int64(len(rec))
	l.cAppends.Inc(0)
	t := Ticket{l: l, seq: l.seq}
	l.sinceCkpt++
	if l.cfg.NoGroup {
		if err := l.dev.Sync(); err != nil {
			l.fail(err)
			return Ticket{}, err
		}
		l.cCommits.Inc(0)
		l.cBatched.Inc(0)
		l.hBatch.Observe(0, 1)
		l.setDurable(l.seq)
	}
	if l.cfg.CheckpointEvery > 0 && l.sinceCkpt >= l.cfg.CheckpointEvery {
		if err := l.checkpointLocked(); err != nil {
			l.fail(err)
			return Ticket{}, err
		}
	}
	return t, nil
}

func (l *Log) setDurable(seq uint64) {
	l.cmu.Lock()
	if seq > l.durableSeq {
		l.durableSeq = seq
	}
	l.cmu.Unlock()
	l.cond.Broadcast()
}

// fail latches the first device error and wakes every parked waiter.
func (l *Log) fail(err error) {
	l.cmu.Lock()
	if l.broken == nil {
		l.broken = err
	}
	l.cmu.Unlock()
	l.cond.Broadcast()
}

// Wait blocks until the record is durable. Concurrent waiters coalesce:
// the first to arrive becomes the flush leader, syncs the device once,
// and the whole batch — every record appended before the leader's cut —
// is published together. Late arrivals whose record the in-flight flush
// does not cover wait for the next round and one of them leads it.
func (t Ticket) Wait() error {
	l := t.l
	if l == nil {
		return nil // zero Ticket: journaling disabled
	}
	l.cmu.Lock()
	for {
		if l.durableSeq >= t.seq {
			l.cmu.Unlock()
			return nil
		}
		if l.broken != nil {
			err := l.broken
			l.cmu.Unlock()
			return err
		}
		if l.flushing {
			l.cond.Wait()
			continue
		}
		// Leader: flush once for everything appended so far.
		l.flushing = true
		prev := l.durableSeq
		l.cmu.Unlock()
		l.mu.Lock()
		cut := l.seq // t.seq <= cut: our record was appended before Wait
		l.mu.Unlock()
		err := l.dev.Sync()
		l.cmu.Lock()
		l.flushing = false
		if err != nil {
			if l.broken == nil {
				l.broken = err
			}
			l.cmu.Unlock()
			l.cond.Broadcast()
			return err
		}
		if cut > l.durableSeq {
			l.durableSeq = cut
		}
		batch := int64(cut) - int64(prev)
		l.cmu.Unlock()
		l.cond.Broadcast()
		l.cCommits.Inc(0)
		if batch > 0 {
			l.cBatched.Add(0, uint64(batch))
			l.hBatch.Observe(0, batch)
		}
		return nil
	}
}

// CheckpointNow takes a snapshot checkpoint immediately.
func (l *Log) CheckpointNow() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.Broken(); err != nil {
		return err
	}
	if err := l.checkpointLocked(); err != nil {
		l.fail(err)
		return err
	}
	return nil
}

// checkpointLocked writes the shadow snapshot into the append stream,
// seals it with a superblock flip, and physically truncates the log
// prefix it supersedes. Called with l.mu held.
//
// Crash safety: the blob is written and synced BEFORE the superblock
// that points at it, and the superblock goes to the slot the current
// generation is not using. A crash anywhere in between leaves the old
// superblock pointing at the old checkpoint and old logStart — and the
// bytes of the half-written new blob sit past the old log's records,
// where the replay scan stops at the first non-record byte.
func (l *Log) checkpointLocked() error {
	payload := spec.AppendSubTree(nil, l.shadow.Export(l.shadow.Root))
	blob := make([]byte, 0, ckptHdrSize+len(payload)+crcSize)
	blob = append(blob, ckptMagic)
	blob = binary.LittleEndian.AppendUint64(blob, l.seq)
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(payload)))
	blob = append(blob, payload...)
	blob = binary.LittleEndian.AppendUint32(blob, crc32.ChecksumIEEE(blob))

	ckptOff := l.end
	if err := l.dev.WriteAt(ckptOff, blob); err != nil {
		return err
	}
	if err := l.dev.Sync(); err != nil {
		return err
	}
	l.end = ckptOff + int64(len(blob))

	l.version++
	sb := make([]byte, 0, len(sbMagic)+5*8+crcSize)
	sb = append(sb, sbMagic[:]...)
	sb = binary.LittleEndian.AppendUint64(sb, l.version)
	sb = binary.LittleEndian.AppendUint64(sb, uint64(ckptOff))
	sb = binary.LittleEndian.AppendUint64(sb, uint64(len(blob)))
	sb = binary.LittleEndian.AppendUint64(sb, l.seq)
	sb = binary.LittleEndian.AppendUint64(sb, uint64(l.end))
	sb = binary.LittleEndian.AppendUint32(sb, crc32.ChecksumIEEE(sb))
	slot := int64(l.version%2) * sbSlotSize
	if err := l.dev.WriteAt(slot, sb); err != nil {
		return err
	}
	if err := l.dev.Sync(); err != nil {
		return err
	}
	// The checkpoint seals every record before it; their storage — and
	// the previous checkpoint's — is reclaimable. The superblock slots
	// below logBase are never truncated.
	l.cTruncBl.Add(0, uint64(l.dev.TruncateRange(logBase, ckptOff)))
	l.sinceCkpt = 0
	l.cCkpts.Inc(0)
	// A checkpoint makes everything up to its cut durable.
	l.setDurable(l.seq)
	return nil
}

// LastSeq returns the seq of the last appended record.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// DurableSeq returns the seq up to which records are known durable
// (covered by a completed flush).
func (l *Log) DurableSeq() uint64 {
	l.cmu.Lock()
	defer l.cmu.Unlock()
	return l.durableSeq
}

// Broken returns the sticky device error, if any (ErrCrashed after an
// armed crash point fired).
func (l *Log) Broken() error {
	l.cmu.Lock()
	defer l.cmu.Unlock()
	return l.broken
}

// ShadowKey returns the canonical key of the journal's shadow state —
// what a full replay of the log must reproduce.
func (l *Log) ShadowKey() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shadow.Key()
}

func encodeRecord(op spec.Op, seq uint64, args spec.Args) []byte {
	payload := spec.AppendArgs(nil, args)
	rec := make([]byte, 0, recHdrSize+len(payload)+crcSize)
	rec = append(rec, recMagic, byte(op))
	rec = binary.LittleEndian.AppendUint64(rec, seq)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	return rec
}
