// Package wal is the durable write-ahead operation journal of the
// AtomFS reproduction (DESIGN.md §14): an append-only log of spec-level
// records layered on the internal/block ramdisk, with per-record
// checksums, a group-commit batcher that coalesces concurrent committers
// behind one flush, dual-slot snapshot checkpoints with log truncation,
// and a recovery path that replays the surviving tail onto the last
// checkpoint.
//
// The paper's AtomFS proves linearizability on a ramdisk and says
// nothing about crashes. The journal extends the same refinement
// methodology across a crash: every record is an Aop (the abstract
// operation the monitor executed at the concrete operation's LP), so
// replaying the committed prefix IS running the specification — recovery
// lands, by construction, in a reachable abstract state, and the
// abstraction relation against a concrete tree rebuilt from it is
// checked explicitly (core.CompareStates).
package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/block"
)

// ErrCrashed is returned by every device and log operation after the
// armed crash point has been reached: the "machine" is down, and nothing
// written afterwards reaches the store.
var ErrCrashed = errors.New("wal: device crashed")

// Device presents a block.Store as a flat, byte-addressed, durable
// space: logical byte i lives in the store block mapped for logical
// block i/block.Size. Blocks are materialized on first write; with a
// single writer and a fixed hint the store's allocation order is
// deterministic (block.TestDeterministicAllocOrder), so two identical
// runs produce byte-identical devices (TestDeviceReproducible).
// TruncateBefore returns the blocks of a checkpointed log prefix to the
// store — the logical offset space keeps growing append-only while
// physical use stays bounded.
//
// Crash injection is byte-exact and temporal: CrashAt(k) arms the device
// so that only the first k bytes EVER WRITTEN (cumulative across all
// WriteAt calls, in call order) survive. The write that crosses the
// boundary is torn mid-call; every later write and sync fails with
// ErrCrashed. A cumulative write-stream offset, rather than a spatial
// one, is what lets one integer express the whole crash taxonomy:
// mid-record torn appends, a crash after an append but before its
// commit flush, and a crash inside a checkpoint or superblock write.
type Device struct {
	mu    sync.Mutex
	store *block.Store
	// blkmap maps logical block numbers to store blocks; block.NoBlock
	// (or an index past the slice) means not materialized.
	blkmap []block.Index
	// written is the cumulative number of bytes accepted across all
	// WriteAt calls; crashAt < 0 means never crash.
	written int64
	crashAt int64
	crashed bool
	// syncDelay simulates the latency of a real flush (fsync); the
	// group-commit benchmark sets it to make batching measurable.
	syncDelay time.Duration
	syncs     int64
	// marks records the cumulative written offset after each WriteAt
	// call — the write-call boundaries a crash fuzzer aims at.
	marks []int64
}

// NewDevice wraps store as a journal device. syncDelay is the simulated
// flush latency (0 for tests).
func NewDevice(store *block.Store, syncDelay time.Duration) *Device {
	return &Device{store: store, crashAt: -1, syncDelay: syncDelay}
}

// CrashAt arms the crash point: only the first k cumulative written
// bytes survive. Must be called before the writes it is meant to cut.
func (d *Device) CrashAt(k int64) {
	d.mu.Lock()
	d.crashAt = k
	d.mu.Unlock()
}

// Crashed reports whether the armed crash point has been reached.
func (d *Device) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Written returns the cumulative bytes written so far — the upper bound
// of meaningful crash offsets for a recorded run.
func (d *Device) Written() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.written
}

// Marks returns the cumulative write-stream offset after each WriteAt
// call so far: the exact byte boundaries between journal writes, which
// the crash fuzzer perturbs by ±1 to synthesize torn and clean cuts.
func (d *Device) Marks() []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int64(nil), d.marks...)
}

// Syncs returns how many flushes completed — the denominator of the
// group-commit amortization claim.
func (d *Device) Syncs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// WriteAt writes p at logical byte offset off. Under an armed crash
// point the write may be torn: the surviving prefix is persisted and
// ErrCrashed returned.
func (d *Device) WriteAt(off int64, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	n := int64(len(p))
	if d.crashAt >= 0 && d.written+n > d.crashAt {
		n = d.crashAt - d.written
		if n < 0 {
			n = 0
		}
		d.crashed = true
	}
	if err := d.writeLocked(off, p[:n]); err != nil {
		return err
	}
	d.written += n
	d.marks = append(d.marks, d.written)
	if d.crashed {
		return ErrCrashed
	}
	return nil
}

func (d *Device) writeLocked(off int64, p []byte) error {
	for len(p) > 0 {
		lb := off / block.Size
		bo := int(off % block.Size)
		idx, err := d.materialize(lb)
		if err != nil {
			return err
		}
		n := copy(d.store.Data(idx)[bo:], p)
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// materialize returns the store block backing logical block lb,
// allocating one on first touch.
func (d *Device) materialize(lb int64) (block.Index, error) {
	for int64(len(d.blkmap)) <= lb {
		d.blkmap = append(d.blkmap, block.NoBlock)
	}
	if d.blkmap[lb] != block.NoBlock {
		return d.blkmap[lb], nil
	}
	idx, err := d.store.Alloc(0)
	if err != nil {
		return block.NoBlock, err
	}
	d.blkmap[lb] = idx
	return idx, nil
}

// ReadAt fills p from logical offset off; unmaterialized (or truncated)
// ranges read as zero, like a sparse disk. Reads never crash: recovery
// runs on the post-crash machine.
func (d *Device) ReadAt(off int64, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(p) > 0 {
		lb := off / block.Size
		bo := int(off % block.Size)
		n := block.Size - bo
		if n > len(p) {
			n = len(p)
		}
		if lb < int64(len(d.blkmap)) && d.blkmap[lb] != block.NoBlock {
			copy(p[:n], d.store.Data(d.blkmap[lb])[bo:])
		} else {
			clear(p[:n])
		}
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// Sync flushes pending writes (simulated: sleeps syncDelay) and fails if
// the device crashed — an acknowledged flush is the durability promise
// group commit hands to its tickets.
func (d *Device) Sync() error {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrCrashed
	}
	delay := d.syncDelay
	d.syncs++
	d.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// TruncateRange returns every logical block wholly inside [lo, hi) to
// the store's free lists and reports how many blocks were reclaimed.
// The log's physical truncation after a checkpoint: the offsets stay
// valid (they read as zero) but their storage is reusable. Ranges are
// block-granular on purpose — a partially covered block stays mapped.
func (d *Device) TruncateRange(lo, hi int64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	freed := 0
	for lb := (lo + block.Size - 1) / block.Size; (lb+1)*block.Size <= hi; lb++ {
		if lb >= int64(len(d.blkmap)) || d.blkmap[lb] == block.NoBlock {
			continue
		}
		d.store.Free(d.blkmap[lb], 0)
		d.blkmap[lb] = block.NoBlock
		freed++
	}
	return freed
}

// BlocksMapped returns how many logical blocks currently hold storage —
// the journal's physical footprint, which checkpoint truncation bounds.
func (d *Device) BlocksMapped() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, idx := range d.blkmap {
		if idx != block.NoBlock {
			n++
		}
	}
	return n
}

// Fingerprint hashes every materialized store block (FNV-1a over index
// and contents, visited in Store.Range's deterministic order):
// byte-reproducibility assertions compare fingerprints of two identical
// runs.
func (d *Device) Fingerprint() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	step := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	d.store.Range(func(idx block.Index, data []byte) bool {
		step(byte(idx))
		step(byte(idx >> 8))
		for _, b := range data {
			step(b)
		}
		return true
	})
	return h
}

func (d *Device) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return fmt.Sprintf("wal.Device{written=%d crashed=%v syncs=%d}", d.written, d.crashed, d.syncs)
}
