package benchutil

import (
	"strings"
	"testing"
	"time"
)

func TestMeasurementThroughput(t *testing.T) {
	m := Measurement{Ops: 1000, Elapsed: time.Second}
	if m.Throughput() != 1000 {
		t.Fatalf("throughput = %f", m.Throughput())
	}
	if (Measurement{Ops: 5}).Throughput() != 0 {
		t.Fatal("zero-duration throughput should be 0")
	}
}

func TestTime(t *testing.T) {
	m := Time("w", "s", func() int64 { return 42 })
	if m.Ops != 42 || m.Name != "w" || m.System != "s" || m.Elapsed < 0 {
		t.Fatalf("m = %+v", m)
	}
}

func TestTableRatioAndRender(t *testing.T) {
	tab := NewTable("fast", "slow")
	tab.Add(Measurement{Name: "w1", System: "fast", Elapsed: time.Second, Ops: 10})
	tab.Add(Measurement{Name: "w1", System: "slow", Elapsed: 2 * time.Second, Ops: 10})
	if r := tab.Ratio("w1", "slow", "fast"); r != 2 {
		t.Fatalf("ratio = %f", r)
	}
	if r := tab.Ratio("missing", "slow", "fast"); r != 0 {
		t.Fatalf("missing ratio = %f", r)
	}
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	if !strings.Contains(out, "w1") || !strings.Contains(out, "1.000s") || !strings.Contains(out, "2.000s") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSeriesSpeedup(t *testing.T) {
	s := NewSeries("scal", "sys")
	s.Add("sys", 1, Measurement{Ops: 100, Elapsed: time.Second})
	s.Add("sys", 4, Measurement{Ops: 300, Elapsed: time.Second})
	if sp := s.Speedup("sys", 4); sp != 3 {
		t.Fatalf("speedup = %f", sp)
	}
	if sp := s.Speedup("sys", 1); sp != 1 {
		t.Fatalf("base speedup = %f", sp)
	}
	if got := s.ThreadCounts(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("threads = %v", got)
	}
	var b strings.Builder
	s.Render(&b)
	if !strings.Contains(b.String(), "scal") || !strings.Contains(b.String(), "3.00x") {
		t.Fatalf("render:\n%s", b.String())
	}
}

func TestRenderCSV(t *testing.T) {
	tab := NewTable("sysA")
	tab.Add(Measurement{Name: "w", System: "sysA", Elapsed: time.Second, Ops: 5})
	var b strings.Builder
	tab.RenderCSV(&b)
	if !strings.Contains(b.String(), "workload,sysA") || !strings.Contains(b.String(), "w,1.000000") {
		t.Fatalf("csv:\n%s", b.String())
	}
	s := NewSeries("x", "sysA")
	s.Add("sysA", 1, Measurement{Ops: 100, Elapsed: time.Second})
	s.Add("sysA", 2, Measurement{Ops: 150, Elapsed: time.Second})
	b.Reset()
	s.RenderCSV(&b)
	if !strings.Contains(b.String(), "threads,sysA_speedup") || !strings.Contains(b.String(), "2,1.500") {
		t.Fatalf("csv:\n%s", b.String())
	}
}
