// Package benchutil provides measurement and reporting helpers for the
// benchmark harness: wall-clock timing, throughput series over thread
// counts, speedup computation, and fixed-width table/series rendering
// that mirrors the layout of the paper's Figure 10 (grouped bars, reported
// as running times) and Figure 11 (speedup-vs-threads curves).
package benchutil

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Measurement is one timed run.
type Measurement struct {
	Name    string
	System  string
	Elapsed time.Duration
	Ops     int64
}

// Throughput returns operations per second.
func (m Measurement) Throughput() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Ops) / m.Elapsed.Seconds()
}

// Time runs fn and returns the measurement.
func Time(name, system string, fn func() int64) Measurement {
	start := time.Now()
	ops := fn()
	return Measurement{Name: name, System: system, Elapsed: time.Since(start), Ops: ops}
}

// Table accumulates workload x system -> duration results (Figure 10).
type Table struct {
	rows    map[string]map[string]Measurement
	rowIdx  []string
	systems []string
}

// NewTable creates an empty table with a fixed system (column) order.
func NewTable(systems ...string) *Table {
	return &Table{rows: map[string]map[string]Measurement{}, systems: systems}
}

// Add records one measurement.
func (t *Table) Add(m Measurement) {
	if _, ok := t.rows[m.Name]; !ok {
		t.rows[m.Name] = map[string]Measurement{}
		t.rowIdx = append(t.rowIdx, m.Name)
	}
	t.rows[m.Name][m.System] = m
}

// Get returns the measurement for (workload, system).
func (t *Table) Get(name, system string) (Measurement, bool) {
	m, ok := t.rows[name][system]
	return m, ok
}

// Ratio returns elapsed(a)/elapsed(b) for one workload.
func (t *Table) Ratio(name, a, b string) float64 {
	ma, oka := t.Get(name, a)
	mb, okb := t.Get(name, b)
	if !oka || !okb || mb.Elapsed == 0 {
		return 0
	}
	return ma.Elapsed.Seconds() / mb.Elapsed.Seconds()
}

// Render writes the table: one row per workload, one column per system,
// cells in seconds.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%-14s", "workload")
	for _, s := range t.systems {
		fmt.Fprintf(w, " %14s", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 14+15*len(t.systems)))
	for _, name := range t.rowIdx {
		fmt.Fprintf(w, "%-14s", name)
		for _, s := range t.systems {
			if m, ok := t.rows[name][s]; ok {
				fmt.Fprintf(w, " %13.3fs", m.Elapsed.Seconds())
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// Series is a speedup-vs-threads curve set (Figure 11): for each system,
// throughput at each thread count, normalized to the 1-thread baseline of
// the same system.
type Series struct {
	Title   string
	systems []string
	points  map[string]map[int]Measurement // system -> threads -> m
	threads map[int]bool
}

// NewSeries creates an empty curve set.
func NewSeries(title string, systems ...string) *Series {
	return &Series{Title: title, systems: systems,
		points: map[string]map[int]Measurement{}, threads: map[int]bool{}}
}

// Add records the measurement for (system, threads).
func (s *Series) Add(system string, threads int, m Measurement) {
	if _, ok := s.points[system]; !ok {
		s.points[system] = map[int]Measurement{}
	}
	s.points[system][threads] = m
	s.threads[threads] = true
}

// Speedup returns throughput(threads)/throughput(1) for a system.
func (s *Series) Speedup(system string, threads int) float64 {
	base, okb := s.points[system][1]
	m, okm := s.points[system][threads]
	if !okb || !okm || base.Throughput() == 0 {
		return 0
	}
	return m.Throughput() / base.Throughput()
}

// Throughput returns the raw ops/s for (system, threads).
func (s *Series) Throughput(system string, threads int) float64 {
	return s.points[system][threads].Throughput()
}

// ThreadCounts returns the measured thread counts in ascending order.
func (s *Series) ThreadCounts() []int {
	out := make([]int, 0, len(s.threads))
	for t := range s.threads {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Render writes the speedup curves: one row per thread count, one column
// per system.
func (s *Series) Render(w io.Writer) {
	fmt.Fprintf(w, "%s (speedup over 1 thread)\n", s.Title)
	fmt.Fprintf(w, "%-8s", "threads")
	for _, sys := range s.systems {
		fmt.Fprintf(w, " %18s", sys)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 8+19*len(s.systems)))
	for _, th := range s.ThreadCounts() {
		fmt.Fprintf(w, "%-8d", th)
		for _, sys := range s.systems {
			fmt.Fprintf(w, " %10.2fx %6.0f", s.Speedup(sys, th), s.Throughput(sys, th)/1000)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "(each cell: speedup, then kops/s)\n")
}

// RenderCSV writes the table as CSV (workload, then one column per
// system, seconds) for external plotting.
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "workload")
	for _, s := range t.systems {
		fmt.Fprintf(w, ",%s", s)
	}
	fmt.Fprintln(w)
	for _, name := range t.rowIdx {
		fmt.Fprintf(w, "%s", name)
		for _, s := range t.systems {
			if m, ok := t.rows[name][s]; ok {
				fmt.Fprintf(w, ",%.6f", m.Elapsed.Seconds())
			} else {
				fmt.Fprintf(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}

// RenderCSV writes the speedup series as CSV (threads, then speedup and
// kops/s per system) for external plotting.
func (s *Series) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "threads")
	for _, sys := range s.systems {
		fmt.Fprintf(w, ",%s_speedup,%s_kops", sys, sys)
	}
	fmt.Fprintln(w)
	for _, th := range s.ThreadCounts() {
		fmt.Fprintf(w, "%d", th)
		for _, sys := range s.systems {
			fmt.Fprintf(w, ",%.3f,%.1f", s.Speedup(sys, th), s.Throughput(sys, th)/1000)
		}
		fmt.Fprintln(w)
	}
}
