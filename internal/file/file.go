// Package file implements file data storage for the AtomFS reproduction: a
// bounded array of block indexes over the ramdisk block store (paper §6,
// "a fixed-size array of indexes for file data storage").
//
// A Data is not internally synchronized; it is protected by its owning
// inode's lock, following the paper's per-inode locking discipline.
package file

import (
	"repro/internal/block"
	"repro/internal/fserr"
)

// MaxBlocks bounds the index array, fixing the maximum file size at
// MaxBlocks * block.Size bytes (16 MiB), comfortably above the 10 MB
// largefile benchmark from the paper's Figure 10.
const MaxBlocks = 4096

// MaxSize is the maximum file size in bytes.
const MaxSize = MaxBlocks * block.Size

// Data holds one file's contents as block indexes into a Store.
type Data struct {
	store *block.Store
	idx   []block.Index // grows up to MaxBlocks; holes are NoBlock
	size  int64
}

// New creates an empty file over store.
func New(store *block.Store) *Data {
	return &Data{store: store}
}

// Size returns the file length in bytes.
func (d *Data) Size() int64 { return d.size }

// ReadAt reads up to len(p) bytes starting at off, returning the byte
// count. Reads beyond EOF return 0 bytes; reads within a hole return
// zeroes, like a sparse file.
func (d *Data) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fserr.ErrInvalid
	}
	if off >= d.size {
		return 0, nil
	}
	if max := d.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	n := 0
	for n < len(p) {
		bi := int((off + int64(n)) / block.Size)
		bo := int((off + int64(n)) % block.Size)
		want := min(len(p)-n, block.Size-bo)
		if bi >= len(d.idx) || d.idx[bi] == block.NoBlock {
			clear(p[n : n+want])
		} else {
			copy(p[n:n+want], d.store.Data(d.idx[bi])[bo:bo+want])
		}
		n += want
	}
	return n, nil
}

// WriteAt writes p at off, allocating blocks as needed, and returns the
// byte count. Writes extending past MaxSize fail with ErrNoSpace before
// modifying anything; allocation failure mid-write returns the partial
// count with the error.
func (d *Data) WriteAt(p []byte, off int64, hint uint64) (int, error) {
	if off < 0 {
		return 0, fserr.ErrInvalid
	}
	if off+int64(len(p)) > MaxSize {
		return 0, fserr.ErrNoSpace
	}
	n := 0
	for n < len(p) {
		bi := int((off + int64(n)) / block.Size)
		bo := int((off + int64(n)) % block.Size)
		want := min(len(p)-n, block.Size-bo)
		for bi >= len(d.idx) {
			d.idx = append(d.idx, block.NoBlock)
		}
		if d.idx[bi] == block.NoBlock {
			b, err := d.store.Alloc(hint)
			if err != nil {
				d.growSize(off + int64(n))
				return n, err
			}
			d.idx[bi] = b
		}
		copy(d.store.Data(d.idx[bi])[bo:bo+want], p[n:n+want])
		n += want
	}
	d.growSize(off + int64(n))
	return n, nil
}

func (d *Data) growSize(end int64) {
	if end > d.size {
		d.size = end
	}
}

// Truncate sets the file length to size, freeing blocks past the end and
// zeroing the tail of the boundary block so later extension reads zeroes.
func (d *Data) Truncate(size int64, hint uint64) error {
	if size < 0 || size > MaxSize {
		return fserr.ErrInvalid
	}
	keep := int((size + block.Size - 1) / block.Size)
	for i := keep; i < len(d.idx); i++ {
		d.store.Free(d.idx[i], hint)
		d.idx[i] = block.NoBlock
	}
	if len(d.idx) > keep {
		d.idx = d.idx[:keep]
	}
	if bo := int(size % block.Size); bo != 0 && keep-1 < len(d.idx) && keep >= 1 && d.idx[keep-1] != block.NoBlock {
		clear(d.store.Data(d.idx[keep-1])[bo:])
	}
	d.size = size
	return nil
}

// Release frees all blocks; the Data must not be used afterwards. Called
// when an inode is unlinked and its storage reclaimed.
func (d *Data) Release(hint uint64) {
	for i, b := range d.idx {
		d.store.Free(b, hint)
		d.idx[i] = block.NoBlock
	}
	d.idx = nil
	d.size = 0
}

// Bytes returns a copy of the whole contents; used by the monitor's
// abstract-concrete relation check and by tests.
func (d *Data) Bytes() []byte {
	p := make([]byte, d.size)
	_, _ = d.ReadAt(p, 0)
	return p
}
