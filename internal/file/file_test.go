package file

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/fserr"
)

func newData(t *testing.T, nblocks int) (*Data, *block.Store) {
	t.Helper()
	s := block.NewStore(nblocks)
	return New(s), s
}

func TestWriteRead(t *testing.T) {
	d, _ := newData(t, 16)
	msg := []byte("hello, atomfs")
	n, err := d.WriteAt(msg, 0, 0)
	if err != nil || n != len(msg) {
		t.Fatalf("WriteAt = %d %v", n, err)
	}
	if d.Size() != int64(len(msg)) {
		t.Fatalf("Size = %d", d.Size())
	}
	got := make([]byte, len(msg))
	n, err = d.ReadAt(got, 0)
	if err != nil || n != len(msg) || !bytes.Equal(got, msg) {
		t.Fatalf("ReadAt = %q %d %v", got, n, err)
	}
}

func TestReadPastEOF(t *testing.T) {
	d, _ := newData(t, 4)
	d.WriteAt([]byte("abc"), 0, 0)
	buf := make([]byte, 10)
	n, err := d.ReadAt(buf, 100)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF = %d %v", n, err)
	}
	n, err = d.ReadAt(buf, 1)
	if err != nil || n != 2 || string(buf[:n]) != "bc" {
		t.Fatalf("partial read = %d %q %v", n, buf[:n], err)
	}
}

func TestSparseHoleReadsZero(t *testing.T) {
	d, _ := newData(t, 16)
	// Write one byte far out, leaving a hole.
	off := int64(3*block.Size + 5)
	if _, err := d.WriteAt([]byte{0xFF}, off, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, block.Size)
	n, err := d.ReadAt(buf, block.Size)
	if err != nil || n != block.Size {
		t.Fatalf("hole read = %d %v", n, err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole byte %d = %d", i, b)
		}
	}
}

func TestCrossBlockWrite(t *testing.T) {
	d, _ := newData(t, 16)
	payload := make([]byte, 3*block.Size)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	off := int64(block.Size/2 + 7)
	if _, err := d.WriteAt(payload, off, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := d.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-block content mismatch")
	}
}

func TestTruncate(t *testing.T) {
	d, s := newData(t, 16)
	payload := make([]byte, 3*block.Size)
	for i := range payload {
		payload[i] = 0xAB
	}
	d.WriteAt(payload, 0, 0)
	inUse := s.InUse()
	if err := d.Truncate(block.Size+10, 0); err != nil {
		t.Fatal(err)
	}
	if d.Size() != int64(block.Size+10) {
		t.Fatalf("Size = %d", d.Size())
	}
	if s.InUse() >= inUse {
		t.Fatalf("truncate freed nothing: %d -> %d", inUse, s.InUse())
	}
	// Extend again; the tail past the old length must read zero.
	if err := d.Truncate(2*block.Size, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, block.Size-10)
	d.ReadAt(buf, block.Size+10)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("post-truncate byte %d = %#x, want 0", i, b)
		}
	}
}

func TestWriteBounds(t *testing.T) {
	d, _ := newData(t, 4)
	if _, err := d.WriteAt([]byte("x"), -1, 0); !errors.Is(err, fserr.ErrInvalid) {
		t.Fatalf("negative offset err = %v", err)
	}
	if _, err := d.WriteAt([]byte("x"), MaxSize, 0); !errors.Is(err, fserr.ErrNoSpace) {
		t.Fatalf("past-max write err = %v", err)
	}
	if _, err := d.ReadAt([]byte{0}, -5); !errors.Is(err, fserr.ErrInvalid) {
		t.Fatalf("negative read err = %v", err)
	}
}

func TestWriteOutOfSpace(t *testing.T) {
	d, _ := newData(t, 2)
	payload := make([]byte, 3*block.Size)
	n, err := d.WriteAt(payload, 0, 0)
	if !errors.Is(err, fserr.ErrNoSpace) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if n != 2*block.Size {
		t.Fatalf("partial write n = %d, want %d", n, 2*block.Size)
	}
}

func TestRelease(t *testing.T) {
	d, s := newData(t, 8)
	d.WriteAt(make([]byte, 4*block.Size), 0, 0)
	d.Release(0)
	if s.InUse() != 0 {
		t.Fatalf("InUse after release = %d", s.InUse())
	}
	if d.Size() != 0 {
		t.Fatalf("Size after release = %d", d.Size())
	}
}

// TestPropertyVsByteSlice compares Data against a plain byte-slice model
// under random writes, reads and truncates.
func TestPropertyVsByteSlice(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := block.NewStore(256)
		d := New(s)
		var model []byte
		const maxOff = 8 * block.Size
		for i := 0; i < 60; i++ {
			switch r.Intn(3) {
			case 0: // write
				off := int64(r.Intn(maxOff))
				n := r.Intn(2*block.Size) + 1
				p := make([]byte, n)
				r.Read(p)
				if _, err := d.WriteAt(p, off, 0); err != nil {
					return false
				}
				end := off + int64(n)
				for int64(len(model)) < end {
					model = append(model, 0)
				}
				copy(model[off:end], p)
			case 1: // read
				off := int64(r.Intn(maxOff))
				n := r.Intn(2 * block.Size)
				got := make([]byte, n)
				gn, err := d.ReadAt(got, off)
				if err != nil {
					return false
				}
				var want []byte
				if off < int64(len(model)) {
					end := min(off+int64(n), int64(len(model)))
					want = model[off:end]
				}
				if gn != len(want) || !bytes.Equal(got[:gn], want) {
					return false
				}
			case 2: // truncate
				size := int64(r.Intn(maxOff))
				if err := d.Truncate(size, 0); err != nil {
					return false
				}
				if size <= int64(len(model)) {
					model = model[:size]
				} else {
					model = append(model, make([]byte, size-int64(len(model)))...)
				}
			}
			if d.Size() != int64(len(model)) {
				return false
			}
		}
		return bytes.Equal(d.Bytes(), model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
