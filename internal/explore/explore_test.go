package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestCampaignClean: many randomized schedules, all three verdicts clean
// on every one. This is the workhorse verification test of the repo: it
// routinely drives operations into helped (external-LP) states.
func TestCampaignClean(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	failures, helped, parks, ops := Campaign(seeds, DefaultConfig)
	for _, f := range failures {
		t.Errorf("failing run: %s", f)
		for _, v := range f.Violations {
			t.Errorf("  violation: %s", v)
		}
	}
	t.Logf("seeds=%d ops=%d parks=%d helped=%d", seeds, ops, parks, helped)
	if parks == 0 {
		t.Error("no operation was ever parked; the explorer is not exploring")
	}
	if helped == 0 {
		t.Error("no operation was ever helped; the schedules never exercised external LPs")
	}
}

// TestUniformMix also explores with the uniform op stream (writes,
// truncates, readdirs included).
func TestUniformMix(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := DefaultConfig(seed)
		cfg.Mix = "uniform"
		res := Run(cfg)
		if !res.Ok() {
			t.Fatalf("seed %d: %s (violations %v)", seed, res, res.Violations)
		}
	}
}

// TestHighContention: maximum park probability, more threads, shorter
// streams — the adversarial end of the schedule space.
func TestHighContention(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := Config{Seed: seed, Threads: 4, OpsPerThread: 3, ParkProb: 0.8, Mix: "rename-heavy"}
		res := Run(cfg)
		if !res.Ok() {
			t.Fatalf("seed %d: %s (violations %v)", seed, res, res.Violations)
		}
	}
}

// TestDeterministicResultShape: the same seed yields the same number of
// operations (the op streams are seeded; scheduling may differ, so only
// the op count is pinned).
func TestDeterministicResultShape(t *testing.T) {
	a := Run(DefaultConfig(5))
	b := Run(DefaultConfig(5))
	if a.Ops != b.Ops {
		t.Fatalf("op counts differ: %d vs %d", a.Ops, b.Ops)
	}
}

// TestFixedLPModeIsCaught: with helping disabled (the Figure-1 bug class)
// the explorer's campaigns must flag at least one run — otherwise the
// verification machinery has no teeth.
func TestFixedLPModeIsCaught(t *testing.T) {
	caught := 0
	for seed := int64(1); seed <= 60 && caught == 0; seed++ {
		cfg := DefaultConfig(seed)
		cfg.Mode = core.ModeFixedLP
		res := Run(cfg)
		if !res.Ok() {
			caught++
		}
	}
	if caught == 0 {
		t.Fatal("60 fixed-LP seeds ran clean; the checker failed to catch the Figure-1 bug class")
	}
}

// TestUnsafeTraversalIsCaught: with lock coupling disabled (the Figure-8
// bug class) the campaigns must flag violations.
func TestUnsafeTraversalIsCaught(t *testing.T) {
	caught := 0
	for seed := int64(1); seed <= 60 && caught == 0; seed++ {
		cfg := DefaultConfig(seed)
		cfg.Unsafe = true
		res := Run(cfg)
		if !res.Ok() {
			caught++
		}
	}
	if caught == 0 {
		t.Fatal("60 unsafe-traversal seeds ran clean; the checker failed to catch the Figure-8 bug class")
	}
}

// TestViolationFlightDump: an injected lock-coupling bug (Unsafe) must
// not only be flagged — the monitor must hand back a flight-recorder
// snapshot of the involved threads, in global order, containing the
// lock-coupling and linearization events that explain the violation.
func TestViolationFlightDump(t *testing.T) {
	var res Result
	found := false
	for seed := int64(1); seed <= 60 && !found; seed++ {
		cfg := DefaultConfig(seed)
		cfg.Unsafe = true
		cfg.Obs = obs.NewRegistry()
		res = Run(cfg)
		found = len(res.Violations) > 0
	}
	if !found {
		t.Fatal("60 unsafe seeds produced no monitor violation")
	}
	if len(res.FlightDump) == 0 {
		t.Fatal("violation produced an empty flight dump")
	}
	kinds := map[obs.EventKind]int{}
	for i, e := range res.FlightDump {
		kinds[e.Kind]++
		if i > 0 && e.Seq <= res.FlightDump[i-1].Seq {
			t.Fatalf("flight dump not in global order at %d: %d then %d",
				i, res.FlightDump[i-1].Seq, e.Seq)
		}
	}
	if kinds[obs.EvLockAcq] == 0 {
		t.Errorf("flight dump has no lock-coupling events: %v", kinds)
	}
	if kinds[obs.EvLPCommit] == 0 {
		t.Errorf("flight dump has no linearization events: %v", kinds)
	}
	if kinds[obs.EvViolation] == 0 {
		t.Errorf("flight dump does not include the violation event: %v", kinds)
	}
}
