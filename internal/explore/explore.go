// Package explore is a randomized interleaving explorer for the monitored
// AtomFS — a lightweight stand-in for the exhaustive case analysis a
// mechanized proof performs. Operations running on separate goroutines
// are intercepted at every instrumentation point (lock acquisitions,
// traversal steps, linearization points) and, with a seeded probability,
// parked; a controller releases parked operations in random order. This
// forces schedules — operations suspended mid-traversal while renames
// commit around them — that free-running goroutines on a few CPUs would
// almost never produce, and every run is checked three ways:
//
//  1. the CRL-H monitor's invariants and refinement obligations, live;
//  2. the quiescent abstract-concrete relation (roll-back mechanism);
//  3. the offline linearizability checker over the recorded history,
//     plus a replay of the monitor's claimed linearization order.
package explore

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/atomfs"
	"repro/internal/core"
	"repro/internal/fstest"
	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/spec"
)

// Config parameterizes one exploration run.
type Config struct {
	Seed         int64
	Threads      int     // concurrent operations sources
	OpsPerThread int     // operations per source (keep Threads*Ops <= ~16 for the checker)
	ParkProb     float64 // probability of parking at an instrumentation point
	// Mix selects the op stream: "rename-heavy" (default) biases toward
	// the operations that exercise helping; "uniform" uses the fstest mix.
	Mix string
	// Mode selects the monitor's LP strategy; ModeFixedLP re-introduces
	// the Figure-1 bug for negative testing of the checker itself.
	Mode core.Mode
	// Unsafe disables lock coupling (Figure-8 bug) for negative testing.
	Unsafe bool
}

// DefaultConfig returns a rename-heavy exploration.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Threads: 3, OpsPerThread: 4, ParkProb: 0.4, Mix: "rename-heavy"}
}

// Result is one run's outcome.
type Result struct {
	Violations   []core.Violation
	Linearizable bool
	OrderLegal   bool
	Helped       int
	Ops          int
	Parks        int
	QuiesceErr   error
}

// Ok reports a fully clean run.
func (r Result) Ok() bool {
	return len(r.Violations) == 0 && r.Linearizable && r.OrderLegal && r.QuiesceErr == nil
}

func (r Result) String() string {
	return fmt.Sprintf("ops=%d parks=%d helped=%d violations=%d linearizable=%v orderLegal=%v quiesce=%v",
		r.Ops, r.Parks, r.Helped, len(r.Violations), r.Linearizable, r.OrderLegal, r.QuiesceErr)
}

// controller parks and releases operations.
type controller struct {
	mu     sync.Mutex
	r      *rand.Rand
	prob   float64
	queue  []chan struct{}
	parked int
	off    bool
}

// maybePark blocks the calling operation with probability prob until the
// scheduler goroutine releases it.
func (c *controller) maybePark() {
	c.mu.Lock()
	if c.off || c.r.Float64() >= c.prob {
		c.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	c.queue = append(c.queue, ch)
	c.parked++
	c.mu.Unlock()
	<-ch
}

// releaseOne releases a random parked operation, reporting whether one
// was found.
func (c *controller) releaseOne() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return false
	}
	i := c.r.Intn(len(c.queue))
	close(c.queue[i])
	c.queue = append(c.queue[:i], c.queue[i+1:]...)
	return true
}

// drain releases everything (end of run).
func (c *controller) drain() {
	c.mu.Lock()
	c.off = true
	for _, ch := range c.queue {
		close(ch)
	}
	c.queue = nil
	c.mu.Unlock()
}

// renameHeavy generates the op mix that exercises helping: renames of
// shallow directories interleaved with deep creates/stats/deletes.
func renameHeavy(r *rand.Rand) (spec.Op, spec.Args) {
	dirs := []string{"/a", "/a/b", "/c"}
	deep := func() string {
		return fmt.Sprintf("%s/n%d", dirs[r.Intn(len(dirs))], r.Intn(3))
	}
	switch r.Intn(6) {
	case 0, 1:
		tops := []string{"/a", "/c", "/d", "/a/b"}
		return spec.OpRename, spec.Args{Path: tops[r.Intn(len(tops))], Path2: tops[r.Intn(len(tops))]}
	case 2:
		return spec.OpMkdir, spec.Args{Path: deep()}
	case 3:
		return spec.OpMknod, spec.Args{Path: deep()}
	case 4:
		return spec.OpStat, spec.Args{Path: deep()}
	default:
		return spec.OpRmdir, spec.Args{Path: deep()}
	}
}

// Run executes one exploration.
func Run(cfg Config) Result {
	rec := history.NewRecorder()
	mon := core.NewMonitor(core.Config{Mode: cfg.Mode, Recorder: rec, CheckGoodAFS: true})
	ctl := &controller{r: rand.New(rand.NewSource(cfg.Seed)), prob: cfg.ParkProb}
	opts := []atomfs.Option{atomfs.WithMonitor(mon)}
	if cfg.Unsafe {
		opts = append(opts, atomfs.WithUnsafeTraversal())
	}
	fs := atomfs.New(opts...)
	for _, d := range []string{"/a", "/a/b", "/c"} {
		if err := fs.Mkdir(d); err != nil {
			return Result{QuiesceErr: fmt.Errorf("setup: %w", err)}
		}
	}
	pre := mon.AbstractState()
	cut := rec.Len()

	fs.SetHook(func(ev atomfs.HookEvent) { ctl.maybePark() })

	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed*7919 + int64(w)))
			stream := fstest.NewOpStream(cfg.Seed*104729 + int64(w))
			for i := 0; i < cfg.OpsPerThread; i++ {
				var op spec.Op
				var args spec.Args
				if cfg.Mix == "uniform" {
					op, args = stream.Next()
				} else {
					op, args = renameHeavy(r)
				}
				fstest.ApplyFS(fs, op, args)
			}
		}(w)
	}

	// Scheduler: keep releasing parked operations until the workers are
	// done; the timeout guards against a genuine deadlock (which would be
	// a bug worth knowing about).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.After(30 * time.Second)
loop:
	for {
		select {
		case <-done:
			break loop
		case <-deadline:
			ctl.drain()
			<-done
			return Result{QuiesceErr: fmt.Errorf("explore: run deadlocked")}
		default:
			if !ctl.releaseOne() {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	ctl.drain()
	fs.SetHook(nil)

	res := Result{Violations: mon.Violations(), Parks: ctl.parked}
	res.QuiesceErr = mon.Quiesce()
	events := rec.Events()[cut:]
	ops, pending, err := history.Complete(events)
	if err != nil || len(pending) != 0 {
		if res.QuiesceErr == nil {
			res.QuiesceErr = fmt.Errorf("history incomplete: %v (%d pending)", err, len(pending))
		}
		return res
	}
	res.Ops = len(ops)
	lres, err := lincheck.CheckOps(pre, ops)
	if err != nil {
		res.QuiesceErr = err
		return res
	}
	res.Linearizable = lres.Linearizable
	if order, err := lincheck.LinOrder(ops); err == nil {
		res.OrderLegal = lincheck.Replay(pre, ops, order) == nil
	}
	for _, e := range events {
		if e.Kind == history.EvLin && e.Helper != e.Tid {
			res.Helped++
		}
	}
	return res
}

// Campaign runs many seeds and returns the first failing result, if any,
// plus aggregate statistics.
func Campaign(seeds int, mk func(seed int64) Config) (failures []Result, helped, parks, totalOps int) {
	for s := 0; s < seeds; s++ {
		res := Run(mk(int64(s + 1)))
		helped += res.Helped
		parks += res.Parks
		totalOps += res.Ops
		if !res.Ok() {
			failures = append(failures, res)
		}
	}
	return failures, helped, parks, totalOps
}
