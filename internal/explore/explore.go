// Package explore is a randomized interleaving explorer for the monitored
// AtomFS — a lightweight stand-in for the exhaustive case analysis a
// mechanized proof performs. Operations running on separate goroutines
// are intercepted at every instrumentation point (lock acquisitions,
// traversal steps, linearization points) and, with a seeded probability,
// parked; a controller releases parked operations in random order. This
// forces schedules — operations suspended mid-traversal while renames
// commit around them — that free-running goroutines on a few CPUs would
// almost never produce, and every run is checked three ways:
//
//  1. the CRL-H monitor's invariants and refinement obligations, live;
//  2. the quiescent abstract-concrete relation (roll-back mechanism);
//  3. the offline linearizability checker over the recorded history,
//     plus a replay of the monitor's claimed linearization order.
package explore

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/atomfs"
	"repro/internal/core"
	"repro/internal/fstest"
	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/obs"
	"repro/internal/spec"
)

// bgCtx is this driver package's root context: the study/exploration
// harness is an execution root (like main), so the background context is
// its to mint. ctxlint:allow
var bgCtx = context.Background()

// Config parameterizes one exploration run.
type Config struct {
	Seed         int64
	Threads      int     // concurrent operations sources
	OpsPerThread int     // operations per source (keep Threads*Ops <= ~16 for the checker)
	ParkProb     float64 // probability of parking at an instrumentation point
	// Mix selects the op stream: "rename-heavy" (default) biases toward
	// the operations that exercise helping; "uniform" uses the fstest mix.
	Mix string
	// Mode selects the monitor's LP strategy; ModeFixedLP re-introduces
	// the Figure-1 bug for negative testing of the checker itself.
	Mode core.Mode
	// Unsafe disables lock coupling (Figure-8 bug) for negative testing.
	Unsafe bool
	// Obs, when non-nil, instruments the run: the file system and monitor
	// report into it, and a violation snapshots the flight recorder into
	// Result.FlightDump.
	Obs *obs.Registry
}

// DefaultConfig returns a rename-heavy exploration.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Threads: 3, OpsPerThread: 4, ParkProb: 0.4, Mix: "rename-heavy"}
}

// Result is one run's outcome.
type Result struct {
	Violations   []core.Violation
	Linearizable bool
	OrderLegal   bool
	Helped       int
	Ops          int
	Parks        int
	QuiesceErr   error
	// FlightDump is the monitor's flight-recorder snapshot taken at the
	// first violation (empty when Config.Obs was nil or the run was clean).
	FlightDump []obs.Event
}

// Ok reports a fully clean run.
func (r Result) Ok() bool {
	return len(r.Violations) == 0 && r.Linearizable && r.OrderLegal && r.QuiesceErr == nil
}

func (r Result) String() string {
	return fmt.Sprintf("ops=%d parks=%d helped=%d violations=%d linearizable=%v orderLegal=%v quiesce=%v",
		r.Ops, r.Parks, r.Helped, len(r.Violations), r.Linearizable, r.OrderLegal, r.QuiesceErr)
}

// parkee is one parked operation: its wake channel and whether it is a
// namespace mutator (mkdir/mknod/rmdir/unlink/rename).
type parkee struct {
	ch  chan struct{}
	mut bool
}

// controller parks and releases operations.
type controller struct {
	mu     sync.Mutex
	r      *rand.Rand
	prob   float64
	queue  []parkee
	parked int
	off    bool
}

// maybePark blocks the calling operation with probability prob until the
// scheduler goroutine releases it.
func (c *controller) maybePark(op spec.Op) {
	c.mu.Lock()
	if c.off || c.r.Float64() >= c.prob {
		c.mu.Unlock()
		return
	}
	mut := false
	switch op {
	case spec.OpMkdir, spec.OpMknod, spec.OpRmdir, spec.OpUnlink, spec.OpRename:
		mut = true
	}
	ch := make(chan struct{})
	c.queue = append(c.queue, parkee{ch: ch, mut: mut})
	c.parked++
	c.mu.Unlock()
	<-ch
}

// releaseOne releases a parked operation, reporting whether one was found.
// It is biased toward releasing namespace mutators before read-only
// operations: the schedules that tell linearization strategies apart are
// precisely the ones where a mutation commits around a suspended
// traversal, so keeping readers parked while writers run maximizes both
// helping (ModeHelpers) and Figure-1 exposure (ModeFixedLP). The bias is
// probabilistic, not absolute, so reader-before-writer orders still occur.
func (c *controller) releaseOne() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return false
	}
	i := c.r.Intn(len(c.queue))
	if !c.queue[i].mut && c.r.Float64() < 0.75 {
		muts := make([]int, 0, len(c.queue))
		for j, p := range c.queue {
			if p.mut {
				muts = append(muts, j)
			}
		}
		if len(muts) > 0 {
			i = muts[c.r.Intn(len(muts))]
		}
	}
	close(c.queue[i].ch)
	c.queue = append(c.queue[:i], c.queue[i+1:]...)
	return true
}

// drain releases everything (end of run).
func (c *controller) drain() {
	c.mu.Lock()
	c.off = true
	for _, p := range c.queue {
		close(p.ch)
	}
	c.queue = nil
	c.mu.Unlock()
}

// RenameHeavy generates the op mix that exercises helping: renames of
// shallow directories interleaved with deep creates/stats/deletes. The
// stats are biased toward the pre-created f0 files: a stat whose concrete
// walk succeeds while a rename commits around it is exactly the Figure-1
// interleaving, and it only distinguishes fixed-LP from helped
// linearization when the target actually exists (both modes agree on
// ENOENT results). Exported as the shared adversarial op generator: the
// schedule fuzzer seeds its corpus from the same distribution.
func RenameHeavy(r *rand.Rand) (spec.Op, spec.Args) {
	dirs := []string{"/a", "/a/b", "/c"}
	deep := func() string {
		if r.Intn(2) == 0 {
			return dirs[r.Intn(len(dirs))] + "/f0"
		}
		return fmt.Sprintf("%s/n%d", dirs[r.Intn(len(dirs))], r.Intn(3))
	}
	switch r.Intn(8) {
	case 0, 1:
		// Half the renames shuttle /a <-> /d: the moves that actually
		// relocate a populated subtree (and with it the f0 files the stats
		// aim at). The rest draw src != dst from the wider pool; same-path
		// no-ops teach the schedule nothing.
		if r.Intn(2) == 0 {
			pair := [2]string{"/a", "/d"}
			if r.Intn(2) == 0 {
				pair = [2]string{"/d", "/a"}
			}
			return spec.OpRename, spec.Args{Path: pair[0], Path2: pair[1]}
		}
		tops := []string{"/a", "/c", "/d", "/a/b"}
		src := tops[r.Intn(len(tops))]
		dst := tops[r.Intn(len(tops))]
		for dst == src {
			dst = tops[r.Intn(len(tops))]
		}
		return spec.OpRename, spec.Args{Path: src, Path2: dst}
	case 2:
		return spec.OpMkdir, spec.Args{Path: deep()}
	case 3:
		return spec.OpMknod, spec.Args{Path: deep()}
	case 4, 5, 6:
		return spec.OpStat, spec.Args{Path: deep()}
	default:
		return spec.OpRmdir, spec.Args{Path: deep()}
	}
}

// SetupDirs and SetupFiles are the initial tree every randomized
// campaign starts from (and the namespace RenameHeavy aims at). The
// schedule fuzzer shares them so corpus entries transfer between the
// two harnesses.
var (
	SetupDirs  = []string{"/a", "/a/b", "/c"}
	SetupFiles = []string{"/a/f0", "/a/b/f0", "/c/f0"}
)

// Run executes one exploration.
func Run(cfg Config) Result {
	rec := history.NewRecorder()
	mon := core.NewMonitor(core.Config{Mode: cfg.Mode, Recorder: rec, CheckGoodAFS: true, Obs: cfg.Obs})
	ctl := &controller{r: rand.New(rand.NewSource(cfg.Seed)), prob: cfg.ParkProb}
	opts := []atomfs.Option{atomfs.WithMonitor(mon)}
	if cfg.Obs != nil {
		// Trace every operation: exploration runs are tiny and the dump's
		// value is completeness, not overhead.
		opts = append(opts, atomfs.WithObs(cfg.Obs), atomfs.WithObsSampleEvery(1))
	}
	if cfg.Unsafe {
		opts = append(opts, atomfs.WithUnsafeTraversal())
	}
	fs := atomfs.New(opts...)
	for _, d := range SetupDirs {
		if err := fs.Mkdir(bgCtx, d); err != nil {
			return Result{QuiesceErr: fmt.Errorf("setup: %w", err)}
		}
	}
	// Files that exist from the start: stats racing renames must be able to
	// succeed concretely, or the Figure-1 phenomenon (fixed-LP abstract
	// ENOENT vs concrete success) never becomes observable.
	for _, f := range SetupFiles {
		if err := fs.Mknod(bgCtx, f); err != nil {
			return Result{QuiesceErr: fmt.Errorf("setup: %w", err)}
		}
	}
	pre := mon.AbstractState()
	cut := rec.Len()

	fs.SetHook(func(ev atomfs.HookEvent) { ctl.maybePark(ev.Op) })

	var wg sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed*7919 + int64(w)))
			stream := fstest.NewOpStream(cfg.Seed*104729 + int64(w))
			for i := 0; i < cfg.OpsPerThread; i++ {
				var op spec.Op
				var args spec.Args
				if cfg.Mix == "uniform" {
					op, args = stream.Next()
				} else {
					op, args = RenameHeavy(r)
				}
				fstest.ApplyFS(bgCtx, fs, op, args)
			}
		}(w)
	}

	// Scheduler: keep releasing parked operations until the workers are
	// done; the timeout guards against a genuine deadlock (which would be
	// a bug worth knowing about).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.After(30 * time.Second)
loop:
	for {
		select {
		case <-done:
			break loop
		case <-deadline:
			ctl.drain()
			<-done
			return Result{QuiesceErr: fmt.Errorf("explore: run deadlocked")}
		default:
			if ctl.releaseOne() {
				// Pacing is what makes the windows real: the released
				// operation gets a moment to run — often to completion —
				// while everyone else stays parked. Without it the queue
				// drains in microseconds and a rename almost never commits
				// around a parked traversal.
				time.Sleep(30 * time.Microsecond)
			} else {
				time.Sleep(10 * time.Microsecond)
			}
		}
	}
	ctl.drain()
	fs.SetHook(nil)

	res := Result{Violations: mon.Violations(), Parks: ctl.parked, FlightDump: mon.FlightDump()}
	res.QuiesceErr = mon.Quiesce()
	events := rec.Events()[cut:]
	ops, pending, err := history.Complete(events)
	if err != nil || len(pending) != 0 {
		if res.QuiesceErr == nil {
			res.QuiesceErr = fmt.Errorf("history incomplete: %v (%d pending)", err, len(pending))
		}
		return res
	}
	res.Ops = len(ops)
	lres, err := lincheck.CheckOps(pre, ops)
	if err != nil {
		res.QuiesceErr = err
		return res
	}
	res.Linearizable = lres.Linearizable
	if order, err := lincheck.LinOrder(ops); err == nil {
		res.OrderLegal = lincheck.Replay(pre, ops, order) == nil
	}
	for _, e := range events {
		if e.Kind == history.EvLin && e.Helper != e.Tid {
			res.Helped++
		}
	}
	return res
}

// Campaign runs many seeds and returns the first failing result, if any,
// plus aggregate statistics.
func Campaign(seeds int, mk func(seed int64) Config) (failures []Result, helped, parks, totalOps int) {
	for s := 0; s < seeds; s++ {
		res := Run(mk(int64(s + 1)))
		helped += res.Helped
		parks += res.Parks
		totalOps += res.Ops
		if !res.Ok() {
			failures = append(failures, res)
		}
	}
	return failures, helped, parks, totalOps
}
