// Package multicore is a virtual-time multicore contention simulator.
//
// The container this reproduction runs in may have a single CPU, while the
// paper's Figure 11 measures scalability on a 16-core Xeon. Per the
// substitution policy in DESIGN.md, this package simulates the missing
// hardware: each operation is modelled as a sequence of segments — some
// amount of CPU work, optionally executed while holding a named lock — and
// the simulator schedules N threads (one per virtual core) over those
// segments in virtual time. Lock contention, the phenomenon that actually
// shapes Figure 11's curves, is modelled exactly:
//
//   - AtomFS's lock coupling makes every operation pass briefly through
//     the root lock and then its directory's lock, so speedup saturates
//     when the shared prefix serializes — the paper's observation that
//     "the lock-coupling traverse ... becomes the major bottleneck as the
//     cores increase";
//   - AtomFS-biglock holds one global lock per operation, so it cannot
//     scale at all;
//   - retryfs walks without locks and only serializes on leaf locks,
//     scaling almost linearly — the ext4 curve.
//
// The simulator is deterministic: time is integral "ticks" and scheduling
// is earliest-clock-first.
package multicore

import (
	"container/heap"
)

// LockID names a lock in the simulated system. Negative IDs mean "no
// lock" (pure CPU work).
type LockID int

// NoLock marks a segment that runs without any lock held.
const NoLock LockID = -1

// Segment is one step of an operation: Work ticks of CPU, with Lock held
// unless Lock == NoLock.
type Segment struct {
	Lock LockID
	Work int64
}

// OpTrace is one operation's segment sequence.
type OpTrace []Segment

// TraceSource generates the i'th operation for a thread.
type TraceSource func(thread, i int) OpTrace

// Result summarizes one simulated run.
type Result struct {
	Threads  int
	Ops      int
	Makespan int64 // virtual ticks until the last thread finishes
}

// Throughput returns operations per million ticks.
func (r Result) Throughput() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Makespan) * 1e6
}

type simThread struct {
	id    int
	clock int64
	opIdx int
	seg   int
	trace OpTrace
}

type threadHeap []*simThread

func (h threadHeap) Len() int      { return len(h) }
func (h threadHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h threadHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].id < h[j].id // deterministic tie-break
}
func (h *threadHeap) Push(x any) { *h = append(*h, x.(*simThread)) }
func (h *threadHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run simulates nThreads threads, each executing opsPerThread operations
// drawn from src, on nThreads virtual cores (threads == cores, as in the
// paper's Figure 11 where the benchmark thread count is swept on a 16-core
// box).
func Run(nThreads, opsPerThread int, src TraceSource) Result {
	lockFree := map[LockID]int64{}
	h := make(threadHeap, 0, nThreads)
	for t := 0; t < nThreads; t++ {
		st := &simThread{id: t, trace: src(t, 0)}
		heap.Push(&h, st)
	}
	var makespan int64
	totalOps := 0
	for h.Len() > 0 {
		st := heap.Pop(&h).(*simThread)
		// Advance to the next op if the current trace is exhausted.
		for st.seg >= len(st.trace) {
			st.opIdx++
			totalOps++
			st.seg = 0
			if st.opIdx >= opsPerThread {
				if st.clock > makespan {
					makespan = st.clock
				}
				st.trace = nil
				break
			}
			st.trace = src(st.id, st.opIdx)
		}
		if st.trace == nil {
			continue
		}
		seg := st.trace[st.seg]
		st.seg++
		if seg.Lock == NoLock {
			st.clock += seg.Work
		} else {
			start := st.clock
			if f := lockFree[seg.Lock]; f > start {
				start = f
			}
			st.clock = start + seg.Work
			lockFree[seg.Lock] = st.clock
		}
		heap.Push(&h, st)
	}
	return Result{Threads: nThreads, Ops: totalOps, Makespan: makespan}
}
