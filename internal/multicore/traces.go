package multicore

import "math/rand"

// This file models the Figure-11 workloads as lock/work traces for the
// three compared designs. Costs are virtual ticks; the shape of the
// resulting curves — not absolute throughput — is the reproduction target.
//
// Lock namespace: lock 0 is the big-lock variant's global lock, lock 1 is
// the root inode, locks dirBase+d are directory inodes, fileBase+f file
// inodes.

const (
	lockGlobal LockID = 0
	lockRoot   LockID = 1
	dirBase    LockID = 100
	fileBase   LockID = 1_000_000
)

// Sharded-namespace lock namespace (ShardSource): each volume owns a
// root lock and disjoint directory/file lock ranges.
const (
	shardRootBase  LockID = 10
	shardVolStride LockID = 1 << 16
	shardDirBase   LockID = 1 << 24
	shardFileBase  LockID = 1 << 28
)

// Design selects the locking architecture being simulated.
type Design int

// Designs under comparison.
const (
	DesignAtomFS  Design = iota // lock coupling, per-inode locks
	DesignBigLock               // one global lock per operation
	DesignRetryFS               // lock-free walk, leaf locks only (ext4/VFS)
)

// Costs calibrates the virtual-tick model.
type Costs struct {
	// VFS is per-operation work outside any file system lock: the
	// VFS/FUSE path-lookup and dispatch overhead the paper credits for
	// the big-lock variant's residual scalability ("AtomFS does not
	// bypass the VFS-level path lookups").
	VFS int64
	// RootStep is the base cost of the root-inode critical section of a
	// coupled traversal; the per-entry chain-scan cost is added on top
	// (the root directory holds every top-level entry — 526 for
	// Fileserver — so this section is the coupling bottleneck at high
	// core counts).
	RootStep int64
	// DirStep is the directory-inode critical section (lookup + possible
	// insert/delete).
	DirStep int64
	// LeafData is the per-4KiB-block cost of file data work under the
	// file's lock.
	LeafData int64
	// Meta is fixed per-operation file system work (inode init etc.).
	Meta int64
	// EntryCost is the per-entry cost of scanning a directory's hash
	// chains under its lock; large directories (Webproxy keeps thousands
	// of files in two directories) make the directory section dominate.
	EntryCost int64
}

// DefaultCosts is calibrated so the simulated 16-core ratios land near
// the paper's: AtomFS ~1.4x biglock on Fileserver, ~1.1-1.2x on Webproxy,
// with the retry design above both.
func DefaultCosts() Costs {
	return Costs{VFS: 5300, RootStep: 160, DirStep: 160, LeafData: 150, Meta: 100, EntryCost: 3}
}

// fsOpKind enumerates the personality flows' primitive steps.
type fsOpKind int

const (
	opCreateWrite fsOpKind = iota
	opAppend
	opReadWhole
	opStat
	opDelete
	opReaddir
)

// opTrace renders one primitive op for a design. dir and file identify
// the inodes touched; dirEntries sizes the directory's hash chains;
// blocks is the data size in 4 KiB blocks.
func (c Costs) opTrace(d Design, dir, file int, rootEntries, dirEntries int64, kind fsOpKind, blocks int64) OpTrace {
	dirLock := dirBase + LockID(dir)
	fileLock := fileBase + LockID(file)
	dataWork := c.LeafData * blocks
	rootWork := c.RootStep + c.EntryCost*rootEntries
	dirWork := c.DirStep + c.EntryCost*dirEntries
	if kind == opCreateWrite || kind == opDelete {
		dirWork += c.Meta // insert/delete under the directory lock
	}
	if kind == opReaddir {
		// Enumeration holds the directory lock for the whole scan.
		dirWork += 2*c.DirStep + 2*c.EntryCost*dirEntries
	}
	leafWork := c.Meta
	switch kind {
	case opCreateWrite, opReadWhole:
		leafWork += dataWork
	case opAppend:
		leafWork += dataWork
	case opStat:
		leafWork = c.Meta / 2
	case opDelete:
		leafWork += c.Meta
	case opReaddir:
		leafWork = 0
	}

	switch d {
	case DesignBigLock:
		// One global section covering all file system work.
		return OpTrace{
			{Lock: NoLock, Work: c.VFS},
			{Lock: lockGlobal, Work: rootWork + dirWork + leafWork},
		}
	case DesignRetryFS:
		// Lock-free walk (modelled as unlocked work), then only the
		// target inode's critical section. ext4 indexes directories with
		// htrees, so its sections do not pay the per-entry chain scan.
		tr := OpTrace{{Lock: NoLock, Work: c.VFS + c.RootStep}}
		if kind == opCreateWrite || kind == opDelete || kind == opReaddir {
			tr = append(tr, Segment{Lock: dirLock, Work: c.DirStep + c.Meta})
		}
		if leafWork > 0 {
			tr = append(tr, Segment{Lock: fileLock, Work: leafWork})
		}
		return tr
	default: // DesignAtomFS: coupled per-inode sections along the path
		tr := OpTrace{
			{Lock: NoLock, Work: c.VFS},
			{Lock: lockRoot, Work: rootWork},
			{Lock: dirLock, Work: dirWork},
		}
		if leafWork > 0 {
			tr = append(tr, Segment{Lock: fileLock, Work: leafWork})
		}
		return tr
	}
}

// FileserverSource models the Filebench Fileserver personality: the op
// mix of internal/workload.Fileserver over many directories.
func (c Costs) FileserverSource(d Design, dirs, files int, fileBlocks int64) TraceSource {
	perDir := int64(files / dirs)
	rootEntries := int64(dirs)
	return func(thread, i int) OpTrace {
		r := rand.New(rand.NewSource(int64(thread)<<32 | int64(i)))
		dir := r.Intn(dirs)
		file := r.Intn(files)
		switch i % 6 {
		case 0:
			return c.opTrace(d, dir, file, rootEntries, perDir, opCreateWrite, fileBlocks)
		case 1:
			return c.opTrace(d, dir, file, rootEntries, perDir, opAppend, 1)
		case 2:
			return c.opTrace(d, dir, file, rootEntries, perDir, opReadWhole, fileBlocks)
		case 3:
			return c.opTrace(d, dir, file, rootEntries, perDir, opStat, 0)
		case 4:
			return c.opTrace(d, dir, file, rootEntries, perDir, opDelete, 0)
		default:
			return c.opTrace(d, dir, 0, rootEntries, perDir, opReaddir, 0)
		}
	}
}

// WebproxySource models the Webproxy personality: one huge cache
// directory holding every object plus a log directory with a shared
// append-only log — the paper's "only two directories, which cannot
// leverage the benefit of multicore concurrency". Each flow is
// delete + create + log-append + five whole-file reads.
func (c Costs) WebproxySource(d Design, files int, fileBlocks int64) TraceSource {
	entries := int64(files)
	return func(thread, i int) OpTrace {
		r := rand.New(rand.NewSource(int64(thread)<<40 | int64(i)))
		file := r.Intn(files)
		switch i % 8 {
		case 0:
			return c.opTrace(d, 0, file, 2, entries, opDelete, 0)
		case 1:
			return c.opTrace(d, 0, file, 2, entries, opCreateWrite, fileBlocks)
		case 2:
			// Append to the shared log file in the log directory.
			return c.opTrace(d, 1, 0, 2, 1, opAppend, 1)
		default:
			return c.opTrace(d, 0, file, 2, entries, opReadWhole, fileBlocks)
		}
	}
}

// ShardSource models the sharded-namespace benchmark (DESIGN.md §13): a
// mutation-heavy create / same-directory-rename / unlink / stat mix over
// nVolumes independent AtomFS volumes stitched behind a mount table.
// Thread t is pinned to volume t%nVolumes — the tenant-per-volume
// placement of atomfsd -volumes. Every mutation's coupled walk passes
// through its volume's root-lock section, so with one volume the root
// serializes the whole namespace's mutation demand, while nVolumes
// volumes shard that demand into independent root-lock domains; the
// unlocked prefix is VFS dispatch plus, for nVolumes > 1, the mount
// table's longest-prefix resolution (path split + prefix match, work
// the flat namespace never pays).
func (c Costs) ShardSource(nVolumes, dirsPerVol, filesPerVol int) TraceSource {
	perDir := int64(filesPerVol / dirsPerVol)
	rootEntries := int64(dirsPerVol)
	return func(thread, i int) OpTrace {
		vol := LockID(thread % nVolumes)
		r := rand.New(rand.NewSource(int64(thread)<<56 | int64(i)))
		root := shardRootBase + vol
		dir := shardDirBase + vol*shardVolStride + LockID(r.Intn(dirsPerVol))
		file := shardFileBase + vol*shardVolStride + LockID(r.Intn(filesPerVol))
		pre := c.VFS
		if nVolumes > 1 {
			pre += c.RootStep / 2 // mount-table longest-prefix resolve
		}
		rootWork := c.RootStep + c.EntryCost*rootEntries
		dirWork := c.DirStep + c.EntryCost*perDir
		switch i % 4 {
		case 0: // create + one data block
			return OpTrace{
				{Lock: NoLock, Work: pre},
				{Lock: root, Work: rootWork},
				{Lock: dir, Work: dirWork + c.Meta},
				{Lock: file, Work: c.Meta + c.LeafData},
			}
		case 1: // same-directory rename: delete + insert under one dir lock
			return OpTrace{
				{Lock: NoLock, Work: pre},
				{Lock: root, Work: rootWork},
				{Lock: dir, Work: dirWork + 2*c.Meta},
				{Lock: file, Work: c.Meta / 2},
			}
		case 2: // unlink
			return OpTrace{
				{Lock: NoLock, Work: pre},
				{Lock: root, Work: rootWork},
				{Lock: dir, Work: dirWork + c.Meta},
				{Lock: file, Work: c.Meta},
			}
		default: // stat: the mix keeps a read leg riding the same root
			return OpTrace{
				{Lock: NoLock, Work: pre},
				{Lock: root, Work: rootWork},
				{Lock: dir, Work: dirWork},
				{Lock: file, Work: c.Meta / 2},
			}
		}
	}
}

// VarmailSource models the Varmail personality (extension beyond the
// paper): one spool directory, a delete + create + read + append flow.
// Its single hot directory serializes fine-grained designs harder than
// Fileserver but the small files keep critical sections shorter than
// Webproxy's.
func (c Costs) VarmailSource(d Design, files int, fileBlocks int64) TraceSource {
	entries := int64(files)
	return func(thread, i int) OpTrace {
		r := rand.New(rand.NewSource(int64(thread)<<48 | int64(i)))
		file := r.Intn(files)
		switch i % 4 {
		case 0:
			return c.opTrace(d, 0, file, 1, entries, opDelete, 0)
		case 1:
			return c.opTrace(d, 0, file, 1, entries, opCreateWrite, fileBlocks)
		case 2:
			return c.opTrace(d, 0, file, 1, entries, opReadWhole, fileBlocks)
		default:
			return c.opTrace(d, 0, file, 1, entries, opAppend, 1)
		}
	}
}
