package multicore

import (
	"testing"
	"testing/quick"
)

func uniform(work int64, lock LockID) TraceSource {
	return func(thread, i int) OpTrace {
		return OpTrace{{Lock: lock, Work: work}}
	}
}

func TestSingleThreadMakespan(t *testing.T) {
	res := Run(1, 100, uniform(10, NoLock))
	if res.Makespan != 1000 || res.Ops != 100 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPerfectParallelism(t *testing.T) {
	// Unlocked work scales linearly: same makespan regardless of threads.
	r1 := Run(1, 100, uniform(10, NoLock))
	r8 := Run(8, 100, uniform(10, NoLock))
	if r8.Makespan != r1.Makespan {
		t.Fatalf("parallel makespan %d != serial %d", r8.Makespan, r1.Makespan)
	}
	if r8.Throughput() < 7.9*r1.Throughput() {
		t.Fatalf("throughput did not scale: %f vs %f", r8.Throughput(), r1.Throughput())
	}
}

func TestGlobalLockSerializes(t *testing.T) {
	// All work under one lock: total makespan is the sum, regardless of
	// thread count.
	r8 := Run(8, 100, uniform(10, LockID(5)))
	if r8.Makespan != 8*100*10 {
		t.Fatalf("makespan = %d, want %d", r8.Makespan, 8000)
	}
	if sp := r8.Throughput() / Run(1, 100, uniform(10, LockID(5))).Throughput(); sp > 1.01 {
		t.Fatalf("speedup through a global lock = %f", sp)
	}
}

func TestAmdahlMix(t *testing.T) {
	// 90% parallel, 10% serialized: speedup at high thread counts must
	// approach 10x and never exceed it.
	src := func(thread, i int) OpTrace {
		return OpTrace{{Lock: NoLock, Work: 90}, {Lock: LockID(1), Work: 10}}
	}
	base := Run(1, 200, src).Throughput()
	sp32 := Run(32, 200, src).Throughput() / base
	if sp32 > 10.01 {
		t.Fatalf("speedup %f exceeds Amdahl bound", sp32)
	}
	if sp32 < 8 {
		t.Fatalf("speedup %f too far below Amdahl bound 10", sp32)
	}
}

func TestDeterminism(t *testing.T) {
	costs := DefaultCosts()
	src := costs.FileserverSource(DesignAtomFS, 526, 10000, 4)
	a := Run(8, 500, src)
	b := Run(8, 500, src)
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestFigure11Shape asserts the qualitative claims of the paper's Figure
// 11 hold in the simulator: fine-grained beats big-lock, the retry design
// beats both, Fileserver gains more from lock coupling than Webproxy.
func TestFigure11Shape(t *testing.T) {
	costs := DefaultCosts()
	speedup := func(d Design, fileserver bool, threads int) float64 {
		var src TraceSource
		if fileserver {
			src = costs.FileserverSource(d, 526, 10000, 4)
		} else {
			src = costs.WebproxySource(d, 1000, 2)
		}
		base := Run(1, 2000, src).Throughput()
		return Run(threads, 2000, src).Throughput() / base
	}
	for _, fileserver := range []bool{true, false} {
		atom := speedup(DesignAtomFS, fileserver, 16)
		big := speedup(DesignBigLock, fileserver, 16)
		retry := speedup(DesignRetryFS, fileserver, 16)
		if atom <= big {
			t.Errorf("fileserver=%v: atomfs (%.2f) not above biglock (%.2f)", fileserver, atom, big)
		}
		if retry <= atom {
			t.Errorf("fileserver=%v: retry (%.2f) not above atomfs (%.2f)", fileserver, retry, atom)
		}
	}
	fsGain := speedup(DesignAtomFS, true, 16) / speedup(DesignBigLock, true, 16)
	wpGain := speedup(DesignAtomFS, false, 16) / speedup(DesignBigLock, false, 16)
	if fsGain <= wpGain {
		t.Errorf("fileserver gain (%.2f) not above webproxy gain (%.2f)", fsGain, wpGain)
	}
	// The paper's numbers: 1.46x and 1.16x. Accept a generous band.
	if fsGain < 1.2 || fsGain > 1.8 {
		t.Errorf("fileserver atomfs/biglock gain = %.2f, want ~1.46", fsGain)
	}
	if wpGain < 1.05 || wpGain > 1.4 {
		t.Errorf("webproxy atomfs/biglock gain = %.2f, want ~1.16", wpGain)
	}
}

// TestPropertyMakespanBounds: makespan is at least total-work/threads
// (can't beat perfect parallelism) and at most total work (can't be worse
// than fully serial on one core... per thread chains bound it).
func TestPropertyMakespanBounds(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(seed%7) + 1
		ops := int(seed%13) + 1
		work := seed%50 + 1
		lock := LockID(seed % 3)
		src := func(thread, i int) OpTrace {
			return OpTrace{{Lock: lock, Work: work}, {Lock: NoLock, Work: work}}
		}
		res := Run(n, ops, src)
		total := int64(n) * int64(ops) * 2 * work
		perThread := int64(ops) * 2 * work
		return res.Makespan >= perThread && res.Makespan <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestVarmailShape: the extension personality's atomfs/biglock gain is
// the smallest of the three — its single hot spool directory with tiny
// files makes the directory critical section dominate even harder than
// Webproxy's (which at least has a separate log directory).
func TestVarmailShape(t *testing.T) {
	costs := DefaultCosts()
	gain := func(src func(Design) TraceSource) float64 {
		base := Run(1, 2000, src(DesignAtomFS)).Throughput()
		atom := Run(16, 2000, src(DesignAtomFS)).Throughput() / base
		baseB := Run(1, 2000, src(DesignBigLock)).Throughput()
		big := Run(16, 2000, src(DesignBigLock)).Throughput() / baseB
		return atom / big
	}
	vm := gain(func(d Design) TraceSource { return costs.VarmailSource(d, 1000, 1) })
	wp := gain(func(d Design) TraceSource { return costs.WebproxySource(d, 1000, 2) })
	fs := gain(func(d Design) TraceSource { return costs.FileserverSource(d, 526, 10000, 4) })
	if !(vm <= wp && wp <= fs) {
		t.Fatalf("gain ordering broken: varmail %.2f, webproxy %.2f, fileserver %.2f", vm, wp, fs)
	}
}

// TestShardSourceScaling asserts the sharded-namespace model's point:
// with mutation demand saturating one root-lock domain, four volumes
// must deliver at least twice (in fact close to four times) the
// aggregate throughput of one, gains must be monotone in the volume
// count, and a single thread must gain nothing from sharding (it only
// pays the mount-table resolve).
func TestShardSourceScaling(t *testing.T) {
	costs := DefaultCosts()
	// Metadata-dominated namespace mutations: dispatch is small next to
	// the coupled root/dir sections (cmd/benchjson -suite shard uses the
	// same calibration).
	costs.VFS = 400
	run := func(vols, threads int) Result {
		return Run(threads, 2000, costs.ShardSource(vols, 64, 1024))
	}
	base := run(1, 16).Throughput()
	v2 := run(2, 16).Throughput()
	v4 := run(4, 16).Throughput()
	if v4 < 2*base {
		t.Fatalf("vols-4 speedup %.2fx < 2x (base %.1f, v4 %.1f)", v4/base, base, v4)
	}
	if v2 < 1.4*base {
		t.Fatalf("vols-2 speedup %.2fx < 1.4x", v2/base)
	}
	if v4 < v2 {
		t.Fatalf("speedup not monotone: vols-2 %.1f > vols-4 %.1f", v2, v4)
	}
	s1, s4 := run(1, 1).Throughput(), run(4, 1).Throughput()
	if s4 > s1*1.01 {
		t.Fatalf("single thread sped up from sharding: %.1f vs %.1f", s4, s1)
	}
	if a, b := run(4, 16), run(4, 16); a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
