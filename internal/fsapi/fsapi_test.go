package fsapi_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/memfs"
)

var tctx = context.Background()

func TestReadAll(t *testing.T) {
	fs := memfs.New()
	if err := fs.Mknod(tctx, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(tctx, "/f", 0, []byte("hello world")); err != nil {
		t.Fatal(err)
	}

	got, err := fsapi.ReadAll(tctx, fs, "/f", 0, 11)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("full read = %q, %v", got, err)
	}
	got, err = fsapi.ReadAll(tctx, fs, "/f", 6, 5)
	if err != nil || string(got) != "world" {
		t.Fatalf("offset read = %q, %v", got, err)
	}
	// Short read at EOF: the buffer is trimmed to what was read.
	got, err = fsapi.ReadAll(tctx, fs, "/f", 6, 100)
	if err != nil || string(got) != "world" {
		t.Fatalf("short read = %q (len %d), %v", got, len(got), err)
	}
	got, err = fsapi.ReadAll(tctx, fs, "/f", 0, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("zero-size read = %q, %v", got, err)
	}
}

// TestReadAllErrorPlumbing: the wrapped FS's error comes through
// unchanged, with no partial buffer.
func TestReadAllErrorPlumbing(t *testing.T) {
	fs := memfs.New()
	if _, err := fsapi.ReadAll(tctx, fs, "/missing", 0, 8); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("missing file: %v, want %v", err, fserr.ErrNotExist)
	}
	if err := fs.Mkdir(tctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.ReadAll(tctx, fs, "/d", 0, 8); !errors.Is(err, fserr.ErrIsDir) {
		t.Fatalf("read dir: %v, want %v", err, fserr.ErrIsDir)
	}
	ctx, cancel := context.WithCancel(tctx)
	cancel()
	if err := fs.Mknod(tctx, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.ReadAll(ctx, fs, "/f", 0, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled read: %v, want %v", err, context.Canceled)
	}
}

type named struct{ fsapi.FS }

func (named) Name() string { return "custom-name" }

func TestName(t *testing.T) {
	if got := fsapi.Name(named{}); got != "custom-name" {
		t.Errorf("named FS: %q", got)
	}
	if got := fsapi.Name(memfs.New()); got == "" {
		t.Error("memfs reports an empty name")
	}
	type anon struct{ fsapi.FS }
	if got := fsapi.Name(anon{}); got == "" {
		t.Error("fallback name is empty")
	}
}
