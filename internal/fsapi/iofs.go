package fsapi

// IOFS adapts an FS to the standard library's read-only io/fs.FS view,
// so generic tooling — testing/fstest.TestFS conformance, fs.WalkDir,
// fs.Glob, template loading, http.FS — runs unmodified against any file
// system in this repository, local or over the wire. The adapter carries
// the context the FS methods need: io/fs has no per-call context, so the
// one captured at construction bounds every operation issued through the
// returned value.

import (
	"context"
	"errors"
	"io"
	iofs "io/fs"
	"path"
	"sort"
	"time"

	"repro/internal/fserr"
	"repro/internal/spec"
)

// IOFS is the io/fs.FS view of an FS. It also implements fs.ReadDirFS;
// directories opened through it implement fs.ReadDirFile.
type IOFS struct {
	fs  FS
	ctx context.Context
}

// NewIOFS wraps fs as an io/fs.FS. ctx bounds every operation made
// through the adapter.
func NewIOFS(ctx context.Context, fs FS) *IOFS { return &IOFS{fs: fs, ctx: ctx} }

// abs maps an io/fs name (slash-separated, no leading slash, "." for the
// root) to the leading-slash form FS methods take.
func abs(name string) string {
	if name == "." {
		return "/"
	}
	return "/" + name
}

// pathErr wraps an FS error as a *fs.PathError, translating the fserr
// sentinels that have io/fs equivalents so errors.Is(err, fs.ErrNotExist)
// and friends work.
func pathErr(op, name string, err error) error {
	switch {
	case errors.Is(err, fserr.ErrNotExist):
		err = iofs.ErrNotExist
	case errors.Is(err, fserr.ErrExist):
		err = iofs.ErrExist
	case errors.Is(err, fserr.ErrInvalid):
		err = iofs.ErrInvalid
	}
	return &iofs.PathError{Op: op, Path: name, Err: err}
}

// Open opens the named file or directory for reading.
func (f *IOFS) Open(name string) (iofs.File, error) {
	if !iofs.ValidPath(name) {
		return nil, &iofs.PathError{Op: "open", Path: name, Err: iofs.ErrInvalid}
	}
	info, err := f.fs.Stat(f.ctx, abs(name))
	if err != nil {
		return nil, pathErr("open", name, err)
	}
	fi := fileInfo{name: path.Base(name), info: info}
	if info.Kind == spec.KindDir {
		return &ioDir{fsys: f, name: name, fi: fi}, nil
	}
	return &ioFile{fsys: f, name: name, fi: fi}, nil
}

// ReadDir implements fs.ReadDirFS.
func (f *IOFS) ReadDir(name string) ([]iofs.DirEntry, error) {
	if !iofs.ValidPath(name) {
		return nil, &iofs.PathError{Op: "readdir", Path: name, Err: iofs.ErrInvalid}
	}
	return f.entries(name)
}

// entries lists name's children as DirEntries in lexical order. A child
// unlinked between the listing and its stat is skipped — the snapshot
// io/fs promises is per-call, not cross-call.
func (f *IOFS) entries(name string) ([]iofs.DirEntry, error) {
	names, err := f.fs.Readdir(f.ctx, abs(name))
	if err != nil {
		return nil, pathErr("readdir", name, err)
	}
	sort.Strings(names) // io/fs requires lexical order; FS does not promise one
	out := make([]iofs.DirEntry, 0, len(names))
	for _, n := range names {
		child := n
		if name != "." {
			child = name + "/" + n
		}
		info, err := f.fs.Stat(f.ctx, abs(child))
		if err != nil {
			if errors.Is(err, fserr.ErrNotExist) {
				continue
			}
			return nil, pathErr("readdir", child, err)
		}
		out = append(out, dirEntry{fileInfo{name: n, info: info}})
	}
	return out, nil
}

// fileInfo implements fs.FileInfo over an Info. The repository's file
// systems track no permissions or times (the paper's interface has
// neither), so modes are synthetic read-only bits and ModTime is zero.
type fileInfo struct {
	name string
	info Info
}

func (fi fileInfo) Name() string { return fi.name }
func (fi fileInfo) Size() int64  { return fi.info.Size }
func (fi fileInfo) Mode() iofs.FileMode {
	if fi.info.Kind == spec.KindDir {
		return iofs.ModeDir | 0o555
	}
	return 0o444
}
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return fi.info.Kind == spec.KindDir }
func (fi fileInfo) Sys() any           { return nil }

type dirEntry struct{ fi fileInfo }

func (d dirEntry) Name() string                 { return d.fi.name }
func (d dirEntry) IsDir() bool                  { return d.fi.IsDir() }
func (d dirEntry) Type() iofs.FileMode          { return d.fi.Mode().Type() }
func (d dirEntry) Info() (iofs.FileInfo, error) { return d.fi, nil }

// ioFile is an open regular file: a cursor over FS.Read.
type ioFile struct {
	fsys *IOFS
	name string
	fi   fileInfo
	off  int64
}

func (f *ioFile) Stat() (iofs.FileInfo, error) { return f.fi, nil }
func (f *ioFile) Close() error                 { return nil }

func (f *ioFile) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := f.fsys.fs.Read(f.fsys.ctx, abs(f.name), f.off, p)
	if err != nil {
		return 0, pathErr("read", f.name, err)
	}
	f.off += int64(n)
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// ReadAt implements io.ReaderAt: FS.Read is already positional.
func (f *ioFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, &iofs.PathError{Op: "read", Path: f.name, Err: iofs.ErrInvalid}
	}
	n, err := f.fsys.fs.Read(f.fsys.ctx, abs(f.name), off, p)
	if err != nil {
		return 0, pathErr("read", f.name, err)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// ioDir is an open directory implementing fs.ReadDirFile. The listing is
// fetched once, on first need, and paged out by ReadDir.
type ioDir struct {
	fsys    *IOFS
	name    string
	fi      fileInfo
	entries []iofs.DirEntry
	listed  bool
	pos     int
}

func (d *ioDir) Stat() (iofs.FileInfo, error) { return d.fi, nil }
func (d *ioDir) Close() error                 { return nil }

func (d *ioDir) Read(p []byte) (int, error) {
	return 0, &iofs.PathError{Op: "read", Path: d.name, Err: errors.New("is a directory")}
}

func (d *ioDir) ReadDir(n int) ([]iofs.DirEntry, error) {
	if !d.listed {
		ents, err := d.fsys.entries(d.name)
		if err != nil {
			return nil, err
		}
		d.entries, d.listed = ents, true
	}
	rest := d.entries[d.pos:]
	if n <= 0 {
		d.pos = len(d.entries)
		return rest, nil
	}
	if len(rest) == 0 {
		return nil, io.EOF
	}
	if n > len(rest) {
		n = len(rest)
	}
	d.pos += n
	return rest[:n:n], nil
}
