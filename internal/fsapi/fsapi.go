// Package fsapi defines the path-based POSIX-like interface shared by
// every file system implementation in this repository (AtomFS, its
// big-lock variant, the traversal-retry baseline, and the tmpfs stand-in),
// so that workloads, conformance suites and benchmarks are generic over
// the implementation.
package fsapi

import "repro/internal/spec"

// Info is a stat result: the inode kind and its size (bytes for files,
// entry count for directories).
type Info struct {
	Kind spec.Kind
	Size int64
}

// FS is the path-based file system interface of the paper's §3.1 (mknod,
// mkdir, rmdir, unlink, rename, stat) plus the data-plane operations the
// evaluation workloads need. All methods are safe for concurrent use.
type FS interface {
	Mknod(path string) error
	Mkdir(path string) error
	Rmdir(path string) error
	Unlink(path string) error
	Rename(src, dst string) error
	Stat(path string) (Info, error)
	Read(path string, off int64, size int) ([]byte, error)
	Write(path string, off int64, data []byte) (int, error)
	Truncate(path string, size int64) error
	Readdir(path string) ([]string, error)
}

// Name returns a short implementation name when the FS provides one.
func Name(fs FS) string {
	if n, ok := fs.(interface{ Name() string }); ok {
		return n.Name()
	}
	return "fs"
}
