// Package fsapi defines the path-based POSIX-like interface shared by
// every file system implementation in this repository (AtomFS, its
// big-lock variant, the traversal-retry baseline, and the tmpfs stand-in),
// so that workloads, conformance suites and benchmarks are generic over
// the implementation.
package fsapi

import (
	"context"

	"repro/internal/spec"
)

// Info is a stat result: the inode kind and its size (bytes for files,
// entry count for directories).
type Info struct {
	Kind spec.Kind
	Size int64
}

// FS is the path-based file system interface of the paper's §3.1 (mknod,
// mkdir, rmdir, unlink, rename, stat) plus the data-plane operations the
// evaluation workloads need. All methods are safe for concurrent use.
//
// v2 semantics: every method takes a context as its first parameter, and
// implementations must observe cancellation and deadlines. An operation
// that aborts because its context was done returns ctx.Err() (possibly
// wrapped) and must leave the file system state exactly as if the
// operation had never started — no partial effects. An operation whose
// linearization point has already been reached (including one helped to
// completion by a concurrent operation) is past the point of no return:
// it completes and returns its real result, never a context error.
//
// Read fills the caller-provided buffer dst starting at offset off and
// reports how many bytes were read, so the hot read path performs no
// allocation. Short reads at end-of-file return n < len(dst) with a nil
// error, matching io.ReaderAt semantics except that EOF is not an error.
type FS interface {
	Mknod(ctx context.Context, path string) error
	Mkdir(ctx context.Context, path string) error
	Rmdir(ctx context.Context, path string) error
	Unlink(ctx context.Context, path string) error
	Rename(ctx context.Context, src, dst string) error
	Stat(ctx context.Context, path string) (Info, error)
	Read(ctx context.Context, path string, off int64, dst []byte) (int, error)
	Write(ctx context.Context, path string, off int64, data []byte) (int, error)
	Truncate(ctx context.Context, path string, size int64) error
	Readdir(ctx context.Context, path string) ([]string, error)
}

// ReadAll is the allocating convenience form of FS.Read for callers that
// want a fresh slice of at most size bytes: conformance checks, shells,
// replay tools. Hot paths should call Read with a reused buffer instead.
func ReadAll(ctx context.Context, fs FS, path string, off int64, size int) ([]byte, error) {
	buf := make([]byte, size)
	n, err := fs.Read(ctx, path, off, buf)
	if err != nil {
		return nil, err
	}
	return buf[:n:n], nil
}

// Name returns a short implementation name when the FS provides one.
func Name(fs FS) string {
	if n, ok := fs.(interface{ Name() string }); ok {
		return n.Name()
	}
	return "fs"
}
