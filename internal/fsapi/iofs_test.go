package fsapi_test

// testing/fstest.TestFS is the standard library's io/fs conformance
// suite: it walks the tree, re-opens every file through every access
// path (Open, ReadDir, Glob, WalkDir), checks ReadDirFile paging, name
// validation, and that contents round-trip. Running it against the IOFS
// adapter over both memfs (the tmpfs stand-in) and AtomFS checks the
// adapter once and the FS implementations' Stat/Read/Readdir contracts
// twice.

import (
	"context"
	"io"
	iofs "io/fs"
	"testing"
	"testing/fstest"

	"repro/internal/atomfs"
	"repro/internal/fsapi"
	"repro/internal/memfs"
)

// buildTree populates fs with a small mixed tree and returns the file
// names TestFS must find (io/fs form, no leading slash).
func buildTree(ctx context.Context, t *testing.T, fs fsapi.FS) []string {
	t.Helper()
	dirs := []string{"/a", "/a/b", "/empty"}
	for _, d := range dirs {
		if err := fs.Mkdir(ctx, d); err != nil {
			t.Fatalf("mkdir %s: %v", d, err)
		}
	}
	files := map[string]string{
		"/hello.txt": "hello over io/fs\n",
		"/a/one":     "1",
		"/a/b/two":   "22",
		"/a/b/zero":  "",
	}
	var names []string
	for p, content := range files {
		if err := fs.Mknod(ctx, p); err != nil {
			t.Fatalf("mknod %s: %v", p, err)
		}
		if len(content) > 0 {
			if _, err := fs.Write(ctx, p, 0, []byte(content)); err != nil {
				t.Fatalf("write %s: %v", p, err)
			}
		}
		names = append(names, p[1:])
	}
	return names
}

func TestIOFSMemfs(t *testing.T) {
	ctx := context.Background()
	fs := memfs.New()
	expected := buildTree(ctx, t, fs)
	if err := fstest.TestFS(fsapi.NewIOFS(ctx, fs), expected...); err != nil {
		t.Fatal(err)
	}
}

func TestIOFSAtomFS(t *testing.T) {
	ctx := context.Background()
	fs := atomfs.New(atomfs.WithFastPath())
	expected := buildTree(ctx, t, fs)
	if err := fstest.TestFS(fsapi.NewIOFS(ctx, fs), expected...); err != nil {
		t.Fatal(err)
	}
}

func TestIOFSSemantics(t *testing.T) {
	ctx := context.Background()
	fs := memfs.New()
	buildTree(ctx, t, fs)
	fsys := fsapi.NewIOFS(ctx, fs)

	if _, err := fsys.Open("nope"); !iofs.ValidPath("nope") || err == nil {
		t.Fatal("open of a missing file must fail")
	} else if pe := err.(*iofs.PathError); pe.Err != iofs.ErrNotExist {
		t.Fatalf("open missing: got %v, want fs.ErrNotExist", pe.Err)
	}
	if _, err := fsys.Open("/abs"); err == nil {
		t.Fatal("leading-slash names are invalid in io/fs")
	}

	data, err := iofs.ReadFile(fsys, "hello.txt")
	if err != nil || string(data) != "hello over io/fs\n" {
		t.Fatalf("ReadFile: %q, %v", data, err)
	}

	// ReaderAt: positional reads independent of the cursor.
	f, err := fsys.Open("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ra, ok := f.(io.ReaderAt)
	if !ok {
		t.Fatal("regular files should implement io.ReaderAt")
	}
	buf := make([]byte, 5)
	if n, err := ra.ReadAt(buf, 6); err != nil || string(buf[:n]) != "over " {
		t.Fatalf("ReadAt: %q, %v", buf[:n], err)
	}

	// ReadDirFile paging: 2 entries, then the rest, then io.EOF.
	d, err := fsys.Open("a/b")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rd, ok := d.(iofs.ReadDirFile)
	if !ok {
		t.Fatal("directories must implement fs.ReadDirFile")
	}
	first, err := rd.ReadDir(1)
	if err != nil || len(first) != 1 || first[0].Name() != "two" {
		t.Fatalf("ReadDir(1): %v, %v", first, err)
	}
	rest, err := rd.ReadDir(10)
	if err != nil || len(rest) != 1 || rest[0].Name() != "zero" {
		t.Fatalf("ReadDir(10): %v, %v", rest, err)
	}
	if _, err := rd.ReadDir(1); err != io.EOF {
		t.Fatalf("exhausted ReadDir(1): %v, want io.EOF", err)
	}
}
