package block

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/fserr"
)

func TestAllocFree(t *testing.T) {
	s := NewStore(4)
	var got []Index
	for i := 0; i < 4; i++ {
		idx, err := s.Alloc(0)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		got = append(got, idx)
	}
	if _, err := s.Alloc(0); !errors.Is(err, fserr.ErrNoSpace) {
		t.Fatalf("alloc past capacity: err = %v, want ENOSPC", err)
	}
	s.Free(got[2], 0)
	idx, err := s.Alloc(0)
	if err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if idx != got[2] {
		t.Fatalf("expected recycled block %d, got %d", got[2], idx)
	}
}

func TestAllocZeroes(t *testing.T) {
	s := NewStore(2)
	idx, _ := s.Alloc(0)
	copy(s.Data(idx), []byte("dirty"))
	s.Free(idx, 0)
	idx2, _ := s.Alloc(0)
	for i, b := range s.Data(idx2) {
		if b != 0 {
			t.Fatalf("recycled block not zeroed at byte %d", i)
		}
	}
}

func TestFreeNoBlock(t *testing.T) {
	s := NewStore(1)
	s.Free(NoBlock, 0) // must not panic
}

func TestDoubleUseDetection(t *testing.T) {
	s := NewStore(1)
	defer func() {
		if recover() == nil {
			t.Error("Data on unallocated block did not panic")
		}
	}()
	s.Data(0)
}

func TestInUse(t *testing.T) {
	s := NewStore(10)
	if s.InUse() != 0 {
		t.Fatal("fresh store in use")
	}
	a, _ := s.Alloc(0)
	b, _ := s.Alloc(1)
	if s.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", s.InUse())
	}
	s.Free(a, 0)
	s.Free(b, 5)
	if s.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", s.InUse())
	}
}

func TestConcurrentAllocNoDoubleHandout(t *testing.T) {
	const blocks = 512
	s := NewStore(blocks)
	var mu sync.Mutex
	seen := make(map[Index]bool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(hint uint64) {
			defer wg.Done()
			for {
				idx, err := s.Alloc(hint)
				if err != nil {
					return
				}
				mu.Lock()
				if seen[idx] {
					t.Errorf("block %d handed out twice", idx)
				}
				seen[idx] = true
				mu.Unlock()
			}
		}(uint64(g))
	}
	wg.Wait()
	if len(seen) != blocks {
		t.Fatalf("allocated %d blocks, want %d", len(seen), blocks)
	}
}

func TestDeterministicAllocOrder(t *testing.T) {
	// A single-threaded allocator with a fixed hint must hand out blocks
	// in a reproducible order: fresh blocks ascend from 0, and frees are
	// recycled LIFO from the hint's shard. Journal checkpoints depend on
	// this — two identical runs must place the same bytes in the same
	// blocks.
	run := func() []Index {
		s := NewStore(16)
		var order []Index
		for i := 0; i < 6; i++ {
			idx, err := s.Alloc(0)
			if err != nil {
				t.Fatalf("alloc %d: %v", i, err)
			}
			order = append(order, idx)
		}
		s.Free(order[1], 0)
		s.Free(order[4], 0)
		for i := 0; i < 3; i++ {
			idx, err := s.Alloc(0)
			if err != nil {
				t.Fatalf("realloc %d: %v", i, err)
			}
			order = append(order, idx)
		}
		return order
	}
	first := run()
	for i := 0; i < 6; i++ {
		if first[i] != Index(i) {
			t.Fatalf("fresh allocation %d got block %d, want %d", i, first[i], i)
		}
	}
	// LIFO recycling: the two frees come back newest-first, then a fresh
	// block from the monotonic frontier.
	if first[6] != first[4] || first[7] != first[1] || first[8] != Index(6) {
		t.Fatalf("recycle order %v, want [%d %d 6]", first[6:], first[4], first[1])
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("allocation order diverged at %d: %d vs %d", i, first[i], second[i])
		}
	}
}

func TestRange(t *testing.T) {
	s := NewStore(8)
	var idxs []Index
	for i := 0; i < 4; i++ {
		idx, _ := s.Alloc(0)
		s.Data(idx)[0] = byte('a' + i)
		idxs = append(idxs, idx)
	}
	s.Free(idxs[2], 0) // freed blocks remain materialized and visited

	var seen []Index
	var firstBytes []byte
	s.Range(func(idx Index, data []byte) bool {
		seen = append(seen, idx)
		firstBytes = append(firstBytes, data[0])
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("Range visited %d blocks, want 4", len(seen))
	}
	for i, idx := range seen {
		if idx != Index(i) {
			t.Fatalf("Range order %v, want ascending from 0", seen)
		}
	}
	if string(firstBytes) != "abcd" {
		t.Fatalf("Range bytes %q, want %q", firstBytes, "abcd")
	}

	// Early stop.
	n := 0
	s.Range(func(Index, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range after false: %d visits, want 1", n)
	}

	// Never-allocated tail is not visited.
	empty := NewStore(4)
	empty.Range(func(Index, []byte) bool {
		t.Fatal("Range on empty store visited a block")
		return false
	})
}

func TestPropertyAllocFreeBalance(t *testing.T) {
	f := func(ops []bool, hint uint64) bool {
		s := NewStore(32)
		var held []Index
		for _, alloc := range ops {
			if alloc {
				idx, err := s.Alloc(hint)
				if err != nil {
					if len(held) < 32 {
						return false // spurious ENOSPC
					}
					continue
				}
				held = append(held, idx)
			} else if len(held) > 0 {
				s.Free(held[len(held)-1], hint)
				held = held[:len(held)-1]
			}
		}
		return s.InUse() == len(held)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
