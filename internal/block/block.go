// Package block implements the ramdisk block store that backs file data in
// the AtomFS reproduction.
//
// The paper's AtomFS prototype stores file contents in fixed-size blocks
// addressed by "a fixed-size array of indexes" per file (§6) on a Linux
// ramdisk. This package is that substrate: a memory-resident array of
// fixed-size blocks with a sharded free-list allocator. Sharding keeps block
// allocation off the critical path of the multicore scalability experiments
// (Figure 11), where a single allocator lock would add contention that the
// paper's ramdisk does not have.
package block

import (
	"sync"

	"repro/internal/fserr"
)

// Size is the block size in bytes, matching the ubiquitous 4 KiB page.
const Size = 4096

// Index identifies a block within a Store. Indexes are dense, starting at 0.
type Index int32

// NoBlock is the sentinel for an unallocated block slot in a file's index
// array, used to represent holes.
const NoBlock Index = -1

const defaultShards = 8

// Store is a ramdisk: a bounded pool of fixed-size blocks.
//
// All methods are safe for concurrent use. Block contents are only
// synchronized by the caller's inode locks — the store itself guarantees
// nothing about concurrent reads and writes to the same block, exactly like
// a real disk.
type Store struct {
	blocks [][]byte // allocated lazily, indexed by Index
	shards []shard
	// next is the low-water mark of never-yet-allocated blocks, guarded by
	// nextMu. Freed blocks go to the shards; fresh blocks come from next.
	nextMu sync.Mutex
	next   Index
	limit  Index
}

type shard struct {
	mu   sync.Mutex
	free []Index
}

// NewStore creates a store holding at most nblocks blocks.
func NewStore(nblocks int) *Store {
	if nblocks <= 0 {
		panic("block: non-positive store size")
	}
	return &Store{
		blocks: make([][]byte, nblocks),
		shards: make([]shard, defaultShards),
		limit:  Index(nblocks),
	}
}

// NBlocks returns the capacity of the store in blocks.
func (s *Store) NBlocks() int { return int(s.limit) }

// Alloc allocates a zeroed block. The hint spreads contending callers over
// free-list shards; any value works (callers typically pass their thread
// ID).
func (s *Store) Alloc(hint uint64) (Index, error) {
	start := int(hint) % len(s.shards)
	if start < 0 {
		start = -start
	}
	for i := 0; i < len(s.shards); i++ {
		sh := &s.shards[(start+i)%len(s.shards)]
		sh.mu.Lock()
		if n := len(sh.free); n > 0 {
			idx := sh.free[n-1]
			sh.free = sh.free[:n-1]
			sh.mu.Unlock()
			clear(s.blocks[idx])
			return idx, nil
		}
		sh.mu.Unlock()
	}
	s.nextMu.Lock()
	if s.next >= s.limit {
		s.nextMu.Unlock()
		return NoBlock, fserr.ErrNoSpace
	}
	idx := s.next
	s.next++
	s.nextMu.Unlock()
	s.blocks[idx] = make([]byte, Size)
	return idx, nil
}

// Free returns a block to the allocator. Freeing NoBlock is a no-op.
func (s *Store) Free(idx Index, hint uint64) {
	if idx == NoBlock {
		return
	}
	if idx < 0 || idx >= s.limit || s.blocks[idx] == nil {
		panic("block: free of invalid block")
	}
	shn := int(hint) % len(s.shards)
	if shn < 0 {
		shn = -shn
	}
	sh := &s.shards[shn]
	sh.mu.Lock()
	sh.free = append(sh.free, idx)
	sh.mu.Unlock()
}

// Data returns the in-memory contents of an allocated block. The slice
// aliases the store; callers synchronize access via their own locks.
func (s *Store) Data(idx Index) []byte {
	if idx < 0 || idx >= s.limit || s.blocks[idx] == nil {
		panic("block: access to unallocated block")
	}
	return s.blocks[idx]
}

// Range calls fn for every materialized block in ascending index order —
// every block that has ever been allocated, whether currently in use or
// sitting on a free list (the store has no per-block ownership record, by
// design: a real disk does not know which sectors a file system considers
// live). fn returning false stops the iteration. The visiting order is
// deterministic, which is what lets a journal checkpoint walk its blocks
// byte-reproducibly; the data slices alias the store, exactly like Data.
// Callers guarantee quiescence, as with InUse.
func (s *Store) Range(fn func(idx Index, data []byte) bool) {
	s.nextMu.Lock()
	hi := s.next
	s.nextMu.Unlock()
	for i := Index(0); i < hi; i++ {
		if s.blocks[i] == nil {
			continue // freed and re-pooled storage is never nil; this is a hole from a torn init
		}
		if !fn(i, s.blocks[i]) {
			return
		}
	}
}

// InUse returns the number of currently allocated blocks. It is advisory
// under concurrency and exact when quiescent; tests use it to detect leaks.
func (s *Store) InUse() int {
	s.nextMu.Lock()
	total := int(s.next)
	s.nextMu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total -= len(sh.free)
		sh.mu.Unlock()
	}
	return total
}
