package slowfs

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/memfs"
)

var tctx = context.Background()

// TestTransparentSemantics: the wrapper adds cost, never behavior — every
// operation's result and error must match the wrapped FS exactly.
func TestTransparentSemantics(t *testing.T) {
	fs := NewWithCost(memfs.New(), 10, 1)
	if err := fs.Mkdir(tctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mknod(tctx, "/d/f"); err != nil {
		t.Fatal(err)
	}
	if n, err := fs.Write(tctx, "/d/f", 0, []byte("abc")); n != 3 || err != nil {
		t.Fatalf("write = %d, %v", n, err)
	}
	got, err := fsapi.ReadAll(tctx, fs, "/d/f", 0, 3)
	if err != nil || string(got) != "abc" {
		t.Fatalf("read = %q, %v", got, err)
	}
	info, err := fs.Stat(tctx, "/d/f")
	if err != nil || info.Size != 3 {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	names, err := fs.Readdir(tctx, "/d")
	if err != nil || len(names) != 1 || names[0] != "f" {
		t.Fatalf("readdir = %v, %v", names, err)
	}
	if err := fs.Rename(tctx, "/d/f", "/g"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(tctx, "/g", 1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(tctx, "/g"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(tctx, "/d"); err != nil {
		t.Fatal(err)
	}
	// Errors pass through untouched.
	if err := fs.Unlink(tctx, "/nope"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("unlink missing: %v", err)
	}
	if _, err := fs.Stat(tctx, "/nope"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("stat missing: %v", err)
	}
}

// TestDelayDeterminism: the injected work is pure CPU spin with no
// randomness or clock reads — the same costs produce the same number of
// spin iterations, observable through the package-level sink.
func TestDelayDeterminism(t *testing.T) {
	run := func() uint64 {
		spinSink = 0
		fs := NewWithCost(memfs.New(), 100, 8)
		fs.Mknod(tctx, "/f")
		fs.Write(tctx, "/f", 0, make([]byte, 1024))
		fs.Read(tctx, "/f", 0, make([]byte, 512))
		fs.Stat(tctx, "/f")
		return spinSink
	}
	first := run()
	if first == 0 {
		t.Fatal("spin loops were eliminated")
	}
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d accumulated %#x, first run %#x", i, got, first)
		}
	}
}

// TestCostScaling: per-byte cost scales with payload size — with zero
// per-op cost, a metadata op contributes only the spin seed, while a
// 64 KiB write must mix in real iterations (a different delta).
func TestCostScaling(t *testing.T) {
	fs := NewWithCost(memfs.New(), 0, 64)
	spinSink = 0
	fs.Mknod(tctx, "/f")
	metaDelta := spinSink // spin(0): the untouched seed constant
	spinSink = 0
	fs.Write(tctx, "/f", 0, make([]byte, 64<<10))
	writeDelta := spinSink
	if writeDelta == metaDelta {
		t.Fatalf("64 KiB write burned no per-byte work (delta %#x)", writeDelta)
	}
}

// TestName: the wrapper advertises itself and its inner FS.
func TestName(t *testing.T) {
	if got := New(memfs.New()).Name(); got != "slowfs(memfs)" {
		t.Errorf("name = %q", got)
	}
}
