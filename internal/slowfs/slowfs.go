// Package slowfs wraps another file system and adds deterministic
// per-operation CPU work. It stands in for DFSCQ in the Figure-10
// comparison: DFSCQ's extracted-Haskell implementation costs the paper's
// AtomFS 1.38x-2.52x less running time, an overhead that is architectural
// (extraction, GC, laziness) rather than algorithmic — so we model it as a
// uniform per-operation and per-byte cost multiplier.
package slowfs

import (
	"context"

	"repro/internal/fsapi"
)

// Factor models the runtime overhead: each operation burns work roughly
// proportional to the wrapped operation's cost.
type FS struct {
	inner   fsapi.FS
	perOp   int // spin iterations per metadata operation
	perByte int // spin iterations per 64 data bytes
}

var _ fsapi.FS = (*FS)(nil)

// New wraps inner with the default overhead calibrated to land in the
// paper's 1.38x-2.52x band on the Figure-10 workloads when wrapping
// AtomFS.
func New(inner fsapi.FS) *FS {
	return &FS{inner: inner, perOp: 450, perByte: 4}
}

// NewWithCost wraps inner with explicit spin costs (for ablations).
func NewWithCost(inner fsapi.FS, perOp, perByte int) *FS {
	return &FS{inner: inner, perOp: perOp, perByte: perByte}
}

// Name identifies the implementation in benchmark tables.
func (fs *FS) Name() string { return "slowfs(" + fsapi.Name(fs.inner) + ")" }

// spinSink defeats dead-code elimination of the spin loops.
var spinSink uint64

func spin(n int) {
	var acc uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < n; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
	}
	spinSink += acc
}

func (fs *FS) cost(bytes int) { spin(fs.perOp + fs.perByte*bytes/64) }

// Mknod creates an empty file.
func (fs *FS) Mknod(ctx context.Context, path string) error {
	fs.cost(0)
	return fs.inner.Mknod(ctx, path)
}

// Mkdir creates an empty directory.
func (fs *FS) Mkdir(ctx context.Context, path string) error {
	fs.cost(0)
	return fs.inner.Mkdir(ctx, path)
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(ctx context.Context, path string) error {
	fs.cost(0)
	return fs.inner.Rmdir(ctx, path)
}

// Unlink removes a file.
func (fs *FS) Unlink(ctx context.Context, path string) error {
	fs.cost(0)
	return fs.inner.Unlink(ctx, path)
}

// Rename moves src to dst.
func (fs *FS) Rename(ctx context.Context, src, dst string) error {
	fs.cost(0)
	return fs.inner.Rename(ctx, src, dst)
}

// Stat reports an inode's kind and size.
func (fs *FS) Stat(ctx context.Context, path string) (fsapi.Info, error) {
	fs.cost(0)
	return fs.inner.Stat(ctx, path)
}

// Read fills dst with file bytes starting at off.
func (fs *FS) Read(ctx context.Context, path string, off int64, dst []byte) (int, error) {
	fs.cost(len(dst))
	return fs.inner.Read(ctx, path, off, dst)
}

// Write stores data at off.
func (fs *FS) Write(ctx context.Context, path string, off int64, data []byte) (int, error) {
	fs.cost(len(data))
	return fs.inner.Write(ctx, path, off, data)
}

// Truncate resizes a file.
func (fs *FS) Truncate(ctx context.Context, path string, size int64) error {
	fs.cost(0)
	return fs.inner.Truncate(ctx, path, size)
}

// Readdir lists entries in sorted order.
func (fs *FS) Readdir(ctx context.Context, path string) ([]string, error) {
	fs.cost(0)
	return fs.inner.Readdir(ctx, path)
}
