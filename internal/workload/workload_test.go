package workload

import (
	"context"
	"testing"

	"repro/internal/atomfs"
	"repro/internal/fsapi"
	"repro/internal/memfs"
	"repro/internal/retryfs"
)

func variants() map[string]func() fsapi.FS {
	return map[string]func() fsapi.FS{
		"atomfs":  func() fsapi.FS { return atomfs.New() },
		"memfs":   func() fsapi.FS { return memfs.New() },
		"retryfs": func() fsapi.FS { return retryfs.New() },
	}
}

func TestLargefile(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			res := Largefile(tctx, mk())
			if res.Ops < 3*(LargefileSize/(64<<10)) {
				t.Fatalf("ops = %d", res.Ops)
			}
		})
	}
}

func TestSmallfile(t *testing.T) {
	fs := atomfs.New()
	res := Smallfile(tctx, fs)
	if res.Ops < int64(5*SmallfileCount) {
		t.Fatalf("ops = %d", res.Ops)
	}
	// Everything was deleted: directories remain, files gone.
	names, err := fs.Readdir(tctx, "/s00")
	if err != nil || len(names) != 0 {
		t.Fatalf("leftovers: %v %v", names, err)
	}
}

func TestApplicationTraces(t *testing.T) {
	traces := []func(context.Context, fsapi.FS) Result{GitClone, MakeXv6, CpQemu, Ripgrep}
	for _, trace := range traces {
		for name, mk := range variants() {
			fs := mk()
			res := trace(tctx, fs)
			if res.Ops == 0 {
				t.Fatalf("%s on %s did nothing", res.Name, name)
			}
		}
	}
}

func TestCpQemuCopiesEverything(t *testing.T) {
	fs := atomfs.New()
	CpQemu(tctx, fs)
	// Spot-check the mirrored tree exists.
	names, err := fs.Readdir(tctx, "/copy")
	if err != nil || len(names) == 0 {
		t.Fatalf("copy tree: %v %v", names, err)
	}
}

func TestFileserverConcurrent(t *testing.T) {
	fs := atomfs.New()
	cfg := FileserverConfig{Dirs: 32, Files: 200, FileSize: 1024, AppendLen: 256, OpsPerThd: 300}
	PrepareFileserver(tctx, fs, cfg)
	res := Fileserver(tctx, fs, cfg, 4)
	if res.Ops == 0 {
		t.Fatal("no ops completed")
	}
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestWebproxyConcurrent(t *testing.T) {
	fs := atomfs.New()
	cfg := WebproxyConfig{Files: 100, FileSize: 512, OpsPerThd: 400}
	PrepareWebproxy(tctx, fs, cfg)
	res := Webproxy(tctx, fs, cfg, 4)
	if res.Ops == 0 {
		t.Fatal("no ops completed")
	}
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a := GitClone(tctx, memfs.New())
	b := GitClone(tctx, memfs.New())
	if a.Ops != b.Ops {
		t.Fatalf("nondeterministic trace: %d vs %d", a.Ops, b.Ops)
	}
}

func TestVarmailConcurrent(t *testing.T) {
	fs := atomfs.New()
	cfg := VarmailConfig{Files: 100, FileSize: 512, AppendLen: 128, OpsPerThd: 200}
	PrepareVarmail(tctx, fs, cfg)
	res := Varmail(tctx, fs, cfg, 4)
	if res.Ops == 0 {
		t.Fatal("no ops completed")
	}
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}
