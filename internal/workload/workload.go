// Package workload implements the evaluation workloads of the AtomFS
// paper's §7: the LFS largefile/smallfile microbenchmarks, operation
// traces modelling the four application workloads of Figure 10 (git
// clone, make, cp -r, ripgrep), and the two Filebench personalities of
// Figure 11 (Fileserver and Webproxy). Every workload is deterministic
// for a given seed and generic over fsapi.FS.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/fsapi"
	"repro/internal/spec"
)

// Result summarizes one workload execution.
type Result struct {
	Name string
	Ops  int64 // completed file system operations
}

func check(err error, what string) {
	if err != nil {
		panic(fmt.Sprintf("workload %s: %v", what, err))
	}
}

// payload returns a deterministic byte pattern of the given size.
func payload(size int, tag byte) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = tag + byte(i%191)
	}
	return p
}

// --- LFS microbenchmarks (Figure 10, largefile / smallfile) -------------

// LargefileSize is the paper's 10 MB large file.
const LargefileSize = 10 << 20

// Largefile writes a 10 MB file sequentially in 64 KiB chunks, reads it
// back sequentially, then rewrites it in place — the LFS largefile
// benchmark.
func Largefile(ctx context.Context, fs fsapi.FS) Result {
	const chunk = 64 << 10
	var ops int64
	check(fs.Mkdir(ctx, "/large"), "largefile")
	check(fs.Mknod(ctx, "/large/big"), "largefile")
	ops++
	buf := payload(chunk, 'L')
	for off := int64(0); off < LargefileSize; off += chunk {
		_, err := fs.Write(ctx, "/large/big", off, buf)
		check(err, "largefile write")
		ops++
	}
	rbuf := make([]byte, chunk)
	for off := int64(0); off < LargefileSize; off += chunk {
		_, err := fs.Read(ctx, "/large/big", off, rbuf)
		check(err, "largefile read")
		ops++
	}
	for off := int64(0); off < LargefileSize; off += chunk {
		_, err := fs.Write(ctx, "/large/big", off, buf)
		check(err, "largefile rewrite")
		ops++
	}
	return Result{Name: "largefile", Ops: ops}
}

// SmallfileCount and SmallfileSize follow the paper: 10K files of 1 KB.
const (
	SmallfileCount = 10000
	SmallfileSize  = 1 << 10
)

// Smallfile creates 10K 1 KB files across 100 directories, stats and
// reads each, then deletes everything — the LFS smallfile benchmark.
func Smallfile(ctx context.Context, fs fsapi.FS) Result {
	var ops int64
	const dirs = 100
	buf := payload(SmallfileSize, 'S')
	for d := 0; d < dirs; d++ {
		check(fs.Mkdir(ctx, fmt.Sprintf("/s%02d", d)), "smallfile mkdir")
		ops++
	}
	for i := 0; i < SmallfileCount; i++ {
		p := fmt.Sprintf("/s%02d/f%d", i%dirs, i)
		check(fs.Mknod(ctx, p), "smallfile create")
		_, err := fs.Write(ctx, p, 0, buf)
		check(err, "smallfile write")
		ops += 2
	}
	rbuf := make([]byte, SmallfileSize)
	for i := 0; i < SmallfileCount; i++ {
		p := fmt.Sprintf("/s%02d/f%d", i%dirs, i)
		_, err := fs.Stat(ctx, p)
		check(err, "smallfile stat")
		_, err = fs.Read(ctx, p, 0, rbuf)
		check(err, "smallfile read")
		ops += 2
	}
	for i := 0; i < SmallfileCount; i++ {
		p := fmt.Sprintf("/s%02d/f%d", i%dirs, i)
		check(fs.Unlink(ctx, p), "smallfile unlink")
		ops++
	}
	return Result{Name: "smallfile", Ops: ops}
}

// --- Application traces (Figure 10) --------------------------------------

// GitClone models cloning the xv6-public repository: unpacking a packfile
// into many small objects, then checking out the worktree — directory
// creation plus bursts of small-file writes.
func GitClone(ctx context.Context, fs fsapi.FS) Result {
	var ops int64
	r := rand.New(rand.NewSource(1))
	check(fs.Mkdir(ctx, "/repo"), "git")
	check(fs.Mkdir(ctx, "/repo/.git"), "git")
	check(fs.Mkdir(ctx, "/repo/.git/objects"), "git")
	ops += 3
	// Object store: 256 fan-out dirs, ~1200 loose objects of 0.5-8 KB.
	for i := 0; i < 64; i++ {
		check(fs.Mkdir(ctx, fmt.Sprintf("/repo/.git/objects/%02x", i)), "git fanout")
		ops++
	}
	for i := 0; i < 1200; i++ {
		p := fmt.Sprintf("/repo/.git/objects/%02x/obj%d", i%64, i)
		check(fs.Mknod(ctx, p), "git object")
		_, err := fs.Write(ctx, p, 0, payload(512+r.Intn(7680), 'g'))
		check(err, "git object write")
		ops += 2
	}
	// Worktree checkout: xv6 is ~100 files of 1-40 KB in one directory.
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("/repo/src%d.c", i)
		check(fs.Mknod(ctx, p), "git checkout")
		_, err := fs.Write(ctx, p, 0, payload(1024+r.Intn(40<<10), 'c'))
		check(err, "git checkout write")
		ops += 2
	}
	// Index + refs writes with renames (git writes tmp then renames).
	for i := 0; i < 20; i++ {
		tmp := fmt.Sprintf("/repo/.git/tmp%d", i)
		check(fs.Mknod(ctx, tmp), "git tmp")
		_, err := fs.Write(ctx, tmp, 0, payload(4096, 'i'))
		check(err, "git tmp write")
		check(fs.Rename(ctx, tmp, "/repo/.git/index"), "git rename")
		ops += 3
	}
	return Result{Name: "git-clone", Ops: ops}
}

// MakeXv6 models building xv6: read every source file several times
// (headers are re-read per compilation unit), write one object file per
// source, then link (read all objects, write one binary).
func MakeXv6(ctx context.Context, fs fsapi.FS) Result {
	var ops int64
	r := rand.New(rand.NewSource(2))
	check(fs.Mkdir(ctx, "/build"), "make")
	ops++
	const sources = 60
	const headers = 20
	for i := 0; i < headers; i++ {
		p := fmt.Sprintf("/build/h%d.h", i)
		check(fs.Mknod(ctx, p), "make header")
		_, err := fs.Write(ctx, p, 0, payload(2048+r.Intn(4096), 'h'))
		check(err, "make header write")
		ops += 2
	}
	for i := 0; i < sources; i++ {
		p := fmt.Sprintf("/build/s%d.c", i)
		check(fs.Mknod(ctx, p), "make source")
		_, err := fs.Write(ctx, p, 0, payload(4096+r.Intn(16<<10), 's'))
		check(err, "make source write")
		ops += 2
	}
	// Compile: each unit reads its source + ~8 headers, writes a .o.
	rbuf := make([]byte, 64<<10)
	for i := 0; i < sources; i++ {
		_, err := fs.Read(ctx, fmt.Sprintf("/build/s%d.c", i), 0, rbuf)
		check(err, "make read source")
		ops++
		for h := 0; h < 8; h++ {
			_, err := fs.Read(ctx, fmt.Sprintf("/build/h%d.h", (i+h)%headers), 0, rbuf[:8<<10])
			check(err, "make read header")
			ops++
		}
		o := fmt.Sprintf("/build/s%d.o", i)
		check(fs.Mknod(ctx, o), "make object")
		_, err = fs.Write(ctx, o, 0, payload(2048+r.Intn(8192), 'o'))
		check(err, "make write object")
		ops += 2
	}
	// Link.
	for i := 0; i < sources; i++ {
		_, err := fs.Read(ctx, fmt.Sprintf("/build/s%d.o", i), 0, rbuf[:16<<10])
		check(err, "make link read")
		ops++
	}
	check(fs.Mknod(ctx, "/build/kernel"), "make link")
	_, err := fs.Write(ctx, "/build/kernel", 0, payload(200<<10, 'k'))
	check(err, "make link write")
	ops += 2
	return Result{Name: "make-xv6", Ops: ops}
}

// CpQemu models `cp -r` of a source tree shaped like qemu's: a deep
// directory hierarchy read from one subtree and recreated under another.
func CpQemu(ctx context.Context, fs fsapi.FS) Result {
	var ops int64
	r := rand.New(rand.NewSource(3))
	check(fs.Mkdir(ctx, "/qemu"), "cp")
	ops++
	type entry struct {
		dir  string
		file string
	}
	var files []entry
	var dirs []string
	// ~80 directories, 3 levels, ~800 files of 1-32 KB.
	for i := 0; i < 8; i++ {
		d1 := fmt.Sprintf("/qemu/d%d", i)
		check(fs.Mkdir(ctx, d1), "cp mkdir")
		dirs = append(dirs, d1)
		ops++
		for j := 0; j < 3; j++ {
			d2 := fmt.Sprintf("%s/sub%d", d1, j)
			check(fs.Mkdir(ctx, d2), "cp mkdir")
			dirs = append(dirs, d2)
			ops++
			for k := 0; k < 3; k++ {
				d3 := fmt.Sprintf("%s/leaf%d", d2, k)
				check(fs.Mkdir(ctx, d3), "cp mkdir")
				dirs = append(dirs, d3)
				ops++
			}
		}
	}
	for i := 0; i < 800; i++ {
		d := dirs[r.Intn(len(dirs))]
		p := fmt.Sprintf("%s/f%d.c", d, i)
		check(fs.Mknod(ctx, p), "cp create")
		_, err := fs.Write(ctx, p, 0, payload(1024+r.Intn(31<<10), 'q'))
		check(err, "cp write")
		files = append(files, entry{d, p})
		ops += 2
	}
	// The copy: walk directories (readdir), read every file, mirror it.
	check(fs.Mkdir(ctx, "/copy"), "cp")
	ops++
	for _, d := range dirs {
		check(fs.Mkdir(ctx, "/copy"+d[len("/qemu"):len(d)]), "cp mirror dir")
		_, err := fs.Readdir(ctx, d)
		check(err, "cp readdir")
		ops += 2
	}
	rbuf := make([]byte, 32<<10)
	for _, f := range files {
		n, err := fs.Read(ctx, f.file, 0, rbuf)
		check(err, "cp read")
		dst := "/copy" + f.file[len("/qemu"):]
		check(fs.Mknod(ctx, dst), "cp dst create")
		_, err = fs.Write(ctx, dst, 0, rbuf[:n])
		check(err, "cp dst write")
		ops += 3
	}
	return Result{Name: "cp-qemu", Ops: ops}
}

// Ripgrep models a recursive content search: enumerate the whole tree
// with readdir and read every file completely, writing nothing.
func Ripgrep(ctx context.Context, fs fsapi.FS) Result {
	// Build a tree to search (same shape as CpQemu's source side).
	var ops int64
	r := rand.New(rand.NewSource(4))
	check(fs.Mkdir(ctx, "/src"), "rg")
	ops++
	var dirs []string
	for i := 0; i < 40; i++ {
		d := fmt.Sprintf("/src/d%d", i)
		check(fs.Mkdir(ctx, d), "rg mkdir")
		dirs = append(dirs, d)
		ops++
	}
	for i := 0; i < 1000; i++ {
		p := fmt.Sprintf("%s/f%d.txt", dirs[r.Intn(len(dirs))], i)
		check(fs.Mknod(ctx, p), "rg create")
		_, err := fs.Write(ctx, p, 0, payload(512+r.Intn(16<<10), 'r'))
		check(err, "rg write")
		ops += 2
	}
	// The search: 3 passes (ripgrep-like repeated invocations).
	rbuf := make([]byte, 16<<10)
	for pass := 0; pass < 3; pass++ {
		var walkDir func(d string)
		walkDir = func(d string) {
			names, err := fs.Readdir(ctx, d)
			check(err, "rg readdir")
			ops++
			for _, n := range names {
				p := d + "/" + n
				info, err := fs.Stat(ctx, p)
				check(err, "rg stat")
				ops++
				if info.Kind == spec.KindDir {
					walkDir(p)
					continue
				}
				for int64(len(rbuf)) < info.Size {
					rbuf = append(rbuf, make([]byte, len(rbuf))...)
				}
				_, err = fs.Read(ctx, p, 0, rbuf[:info.Size])
				check(err, "rg read")
				ops++
			}
		}
		walkDir("/src")
	}
	return Result{Name: "ripgrep", Ops: ops}
}

// DeepPath models mutation traffic at the bottom of a deep directory
// chain — the workload whose traversal cost is pure path depth: build
// /deep/d0/.../d{depth-1}, then run a create/write/stat/rename/unlink
// mix against that directory. Root lock-coupling pays depth couplings
// per operation; a prefix cache pays one entry lock plus validation, so
// the depth-8 cell makes the difference visible in the standard sweep
// (the other application workloads top out at 4 components).
func DeepPath(ctx context.Context, fs fsapi.FS, depth int) Result {
	var ops int64
	dir := "/deep"
	check(fs.Mkdir(ctx, dir), "deeppath mkdir")
	ops++
	for i := 0; i < depth; i++ {
		dir = fmt.Sprintf("%s/d%d", dir, i)
		check(fs.Mkdir(ctx, dir), "deeppath mkdir")
		ops++
	}
	buf := payload(1<<10, 'p')
	rbuf := make([]byte, 1<<10)
	for i := 0; i < 2000; i++ {
		p := fmt.Sprintf("%s/f%d", dir, i)
		check(fs.Mknod(ctx, p), "deeppath create")
		_, err := fs.Write(ctx, p, 0, buf)
		check(err, "deeppath write")
		_, err = fs.Stat(ctx, p)
		check(err, "deeppath stat")
		_, err = fs.Read(ctx, p, 0, rbuf)
		check(err, "deeppath read")
		ops += 4
		q := fmt.Sprintf("%s/g%d", dir, i)
		check(fs.Rename(ctx, p, q), "deeppath rename")
		ops++
		if i%2 == 0 {
			check(fs.Unlink(ctx, q), "deeppath unlink")
			ops++
		}
	}
	return Result{Name: fmt.Sprintf("deeppath-%d", depth), Ops: ops}
}

// --- Filebench personalities (Figure 11) ----------------------------------

// FileserverConfig mirrors the paper's description: about 526 distinct
// directories and 10,000 files.
type FileserverConfig struct {
	Dirs      int
	Files     int
	FileSize  int
	AppendLen int
	OpsPerThd int
}

// DefaultFileserver is scaled for repeatable in-memory runs.
func DefaultFileserver() FileserverConfig {
	return FileserverConfig{Dirs: 526, Files: 10000, FileSize: 16 << 10, AppendLen: 4 << 10, OpsPerThd: 4000}
}

// PrepareFileserver builds the directory tree and file population.
func PrepareFileserver(ctx context.Context, fs fsapi.FS, cfg FileserverConfig) {
	for d := 0; d < cfg.Dirs; d++ {
		check(fs.Mkdir(ctx, fmt.Sprintf("/fsrv%d", d)), "fileserver prepare")
	}
	buf := payload(cfg.FileSize, 'F')
	for i := 0; i < cfg.Files; i++ {
		p := fmt.Sprintf("/fsrv%d/f%d", i%cfg.Dirs, i)
		check(fs.Mknod(ctx, p), "fileserver prepare")
		_, err := fs.Write(ctx, p, 0, buf)
		check(err, "fileserver prepare write")
	}
}

// Fileserver runs the Filebench fileserver flow with nThreads workers:
// each iteration creates a file, writes it whole, appends, reads a whole
// file, stats one, and deletes one — spread across the many directories.
func Fileserver(ctx context.Context, fs fsapi.FS, cfg FileserverConfig, nThreads int) Result {
	var ops atomic.Int64
	var wg sync.WaitGroup
	appendBuf := payload(cfg.AppendLen, 'A')
	writeBuf := payload(cfg.FileSize, 'W')
	for t := 0; t < nThreads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(1000 + t)))
			rbuf := make([]byte, cfg.FileSize)
			var local int64
			for i := 0; i < cfg.OpsPerThd; i++ {
				d := r.Intn(cfg.Dirs)
				switch i % 6 {
				case 0: // createfile + writewholefile
					p := fmt.Sprintf("/fsrv%d/new-t%d-%d", d, t, i)
					if fs.Mknod(ctx, p) == nil {
						fs.Write(ctx, p, 0, writeBuf)
						local += 2
					}
				case 1: // appendfile
					p := fmt.Sprintf("/fsrv%d/f%d", d, r.Intn(cfg.Files))
					if info, err := fs.Stat(ctx, p); err == nil {
						fs.Write(ctx, p, info.Size, appendBuf)
						local += 2
					}
				case 2: // readwholefile
					p := fmt.Sprintf("/fsrv%d/f%d", d, r.Intn(cfg.Files))
					fs.Read(ctx, p, 0, rbuf)
					local++
				case 3: // statfile
					p := fmt.Sprintf("/fsrv%d/f%d", d, r.Intn(cfg.Files))
					fs.Stat(ctx, p)
					local++
				case 4: // deletefile (of one this thread created earlier)
					p := fmt.Sprintf("/fsrv%d/new-t%d-%d", r.Intn(cfg.Dirs), t, i-4)
					fs.Unlink(ctx, p)
					local++
				case 5: // listdir
					fs.Readdir(ctx, fmt.Sprintf("/fsrv%d", d))
					local++
				}
			}
			ops.Add(local)
		}(t)
	}
	wg.Wait()
	return Result{Name: "fileserver", Ops: ops.Load()}
}

// WebproxyConfig mirrors the paper's note that Webproxy "involves only
// two directories", which starves fine-grained locking of parallelism.
type WebproxyConfig struct {
	Files     int
	FileSize  int
	OpsPerThd int
}

// DefaultWebproxy is scaled for repeatable in-memory runs.
func DefaultWebproxy() WebproxyConfig {
	return WebproxyConfig{Files: 5000, FileSize: 8 << 10, OpsPerThd: 4000}
}

// PrepareWebproxy builds the two-directory cache population.
func PrepareWebproxy(ctx context.Context, fs fsapi.FS, cfg WebproxyConfig) {
	check(fs.Mkdir(ctx, "/proxy0"), "webproxy prepare")
	check(fs.Mkdir(ctx, "/proxy1"), "webproxy prepare")
	buf := payload(cfg.FileSize, 'P')
	for i := 0; i < cfg.Files; i++ {
		p := fmt.Sprintf("/proxy%d/f%d", i%2, i)
		check(fs.Mknod(ctx, p), "webproxy prepare")
		_, err := fs.Write(ctx, p, 0, buf)
		check(err, "webproxy prepare write")
	}
}

// Webproxy runs the Filebench webproxy flow: per iteration, delete an old
// cache entry, create and fill a replacement, then read five random
// entries — all within two shared directories.
func Webproxy(ctx context.Context, fs fsapi.FS, cfg WebproxyConfig, nThreads int) Result {
	var ops atomic.Int64
	var wg sync.WaitGroup
	buf := payload(cfg.FileSize, 'p')
	for t := 0; t < nThreads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(2000 + t)))
			rbuf := make([]byte, cfg.FileSize)
			var local int64
			for i := 0; i < cfg.OpsPerThd/8; i++ {
				d := r.Intn(2)
				victim := fmt.Sprintf("/proxy%d/t%d-c%d", d, t, i-1)
				fs.Unlink(ctx, victim)
				local++
				p := fmt.Sprintf("/proxy%d/t%d-c%d", d, t, i)
				if fs.Mknod(ctx, p) == nil {
					fs.Write(ctx, p, 0, buf)
					local += 2
				}
				for k := 0; k < 5; k++ {
					q := fmt.Sprintf("/proxy%d/f%d", d, r.Intn(cfg.Files))
					fs.Read(ctx, q, 0, rbuf)
					local++
				}
			}
			ops.Add(local)
		}(t)
	}
	wg.Wait()
	return Result{Name: "webproxy", Ops: ops.Load()}
}

// VarmailConfig parameterizes the Varmail personality — Filebench's
// mail-server workload, included here as an extension beyond the paper's
// two personalities: one spool directory, small files, fsync-free
// in-memory variant of the classic delete/create/append/read mix.
type VarmailConfig struct {
	Files     int
	FileSize  int
	AppendLen int
	OpsPerThd int
}

// DefaultVarmail is scaled for repeatable in-memory runs.
func DefaultVarmail() VarmailConfig {
	return VarmailConfig{Files: 1000, FileSize: 4 << 10, AppendLen: 1 << 10, OpsPerThd: 4000}
}

// PrepareVarmail builds the spool.
func PrepareVarmail(ctx context.Context, fs fsapi.FS, cfg VarmailConfig) {
	check(fs.Mkdir(ctx, "/spool"), "varmail prepare")
	buf := payload(cfg.FileSize, 'M')
	for i := 0; i < cfg.Files; i++ {
		p := fmt.Sprintf("/spool/m%d", i)
		check(fs.Mknod(ctx, p), "varmail prepare")
		_, err := fs.Write(ctx, p, 0, buf)
		check(err, "varmail prepare write")
	}
}

// Varmail runs the mail-server flow: delete a message, deliver a new one
// (create + write), read one, append to one — all in the single spool
// directory.
func Varmail(ctx context.Context, fs fsapi.FS, cfg VarmailConfig, nThreads int) Result {
	var ops atomic.Int64
	var wg sync.WaitGroup
	body := payload(cfg.FileSize, 'm')
	appendBuf := payload(cfg.AppendLen, 'a')
	for t := 0; t < nThreads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(3000 + t)))
			rbuf := make([]byte, cfg.FileSize)
			var local int64
			for i := 0; i < cfg.OpsPerThd/4; i++ {
				old := fmt.Sprintf("/spool/t%d-d%d", t, i-1)
				fs.Unlink(ctx, old)
				local++
				p := fmt.Sprintf("/spool/t%d-d%d", t, i)
				if fs.Mknod(ctx, p) == nil {
					fs.Write(ctx, p, 0, body)
					local += 2
				}
				q := fmt.Sprintf("/spool/m%d", r.Intn(cfg.Files))
				fs.Read(ctx, q, 0, rbuf)
				local++
				if info, err := fs.Stat(ctx, q); err == nil {
					fs.Write(ctx, q, info.Size, appendBuf)
					local += 2
				}
			}
			ops.Add(local)
		}(t)
	}
	wg.Wait()
	return Result{Name: "varmail", Ops: ops.Load()}
}
