package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/atomfs"
	"repro/internal/fstest"
	"repro/internal/memfs"
	"repro/internal/spec"
)

func TestFormatParseRoundTrip(t *testing.T) {
	entries := []Entry{
		{Op: spec.OpMkdir, Args: spec.Args{Path: "/a"}},
		{Op: spec.OpMknod, Args: spec.Args{Path: "/a/file with spaces"}},
		{Op: spec.OpWrite, Args: spec.Args{Path: "/a/file with spaces", Off: 7, Data: []byte{0, 1, 2, 255}}},
		{Op: spec.OpRead, Args: spec.Args{Path: "/a/file with spaces", Off: 2, Size: 10}},
		{Op: spec.OpTruncate, Args: spec.Args{Path: "/a/file with spaces", Off: 3}},
		{Op: spec.OpRename, Args: spec.Args{Path: "/a", Path2: "/b c"}},
		{Op: spec.OpStat, Args: spec.Args{Path: "/b c"}},
		{Op: spec.OpReaddir, Args: spec.Args{Path: "/"}},
		{Op: spec.OpUnlink, Args: spec.Args{Path: "/b c/file with spaces"}},
		{Op: spec.OpRmdir, Args: spec.Args{Path: "/b c"}},
	}
	var b strings.Builder
	if err := Write(&b, entries); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse:\n%s\n%v", b.String(), err)
	}
	if len(got) != len(entries) {
		t.Fatalf("entries = %d, want %d", len(got), len(entries))
	}
	for i := range got {
		if got[i].Op != entries[i].Op || got[i].Args.Path != entries[i].Args.Path ||
			got[i].Args.Path2 != entries[i].Args.Path2 || got[i].Args.Off != entries[i].Args.Off ||
			got[i].Args.Size != entries[i].Args.Size || string(got[i].Args.Data) != string(entries[i].Args.Data) {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

func TestParseCommentsAndErrors(t *testing.T) {
	in := "# a comment\n\nmkdir /a\n"
	entries, err := Parse(strings.NewReader(in))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v, err = %v", entries, err)
	}
	for _, bad := range []string{
		"frobnicate /x",
		"mkdir",
		"write /f notanumber AAAA",
		"write /f 0 !!!notbase64!!!",
		"read /f 0",
		"rename /only",
		`mkdir "unterminated`,
	} {
		if _, _, err := ParseLine(bad); err == nil {
			t.Errorf("ParseLine(%q) accepted", bad)
		}
	}
}

func TestRecordThenReplayDifferential(t *testing.T) {
	// Record a random run against atomfs, then replay it on memfs in
	// lockstep with the spec: all three implementations agree.
	rec := NewRecorder(atomfs.New())
	stream := fstest.NewOpStream(77)
	for i := 0; i < 400; i++ {
		op, args := stream.Next()
		fstest.ApplyFS(tctx, rec, op, args)
	}
	entries := rec.Trace()
	if len(entries) != 400 {
		t.Fatalf("recorded %d entries", len(entries))
	}
	res, err := Replay(tctx, memfs.New(), spec.New(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 400 {
		t.Fatalf("applied %d", res.Applied)
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	// A trace whose expectations cannot hold against a pre-polluted FS.
	entries := []Entry{{Op: spec.OpMkdir, Args: spec.Args{Path: "/a"}}}
	fs := memfs.New()
	fs.Mkdir(tctx, "/a") // now the trace's mkdir collides, the fresh model's does not
	if _, err := Replay(tctx, fs, spec.New(), entries); err == nil {
		t.Fatal("divergence not detected")
	}
	// Without a model, replay just applies.
	res, err := Replay(tctx, fs, nil, entries)
	if err != nil || res.Errors != 1 {
		t.Fatalf("res = %+v err = %v", res, err)
	}
}

func TestPropertyRoundTripRandomTraces(t *testing.T) {
	f := func(seed int64) bool {
		stream := fstest.NewOpStream(seed)
		var entries []Entry
		for i := 0; i < 50; i++ {
			op, args := stream.Next()
			entries = append(entries, Entry{Op: op, Args: args})
		}
		var b strings.Builder
		if err := Write(&b, entries); err != nil {
			return false
		}
		got, err := Parse(strings.NewReader(b.String()))
		if err != nil || len(got) != len(entries) {
			return false
		}
		// Replaying both against fresh models must agree step for step.
		m1, m2 := spec.New(), spec.New()
		for i := range entries {
			r1, _ := m1.Apply(entries[i].Op, entries[i].Args)
			r2, _ := m2.Apply(got[i].Op, got[i].Args)
			if !r1.Equal(r2) {
				return false
			}
		}
		return m1.Key() == m2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFromStateRebuilds: serializing a populated FS to a creation trace
// and replaying it on a fresh FS reproduces the exact tree.
func TestFromStateRebuilds(t *testing.T) {
	src := atomfs.New()
	stream := fstest.NewOpStream(123)
	for i := 0; i < 300; i++ {
		op, args := stream.Next()
		fstest.ApplyFS(tctx, src, op, args)
	}
	entries := FromState(src.Snapshot())
	// Rebuild on a fresh model and a fresh concrete FS, in lockstep.
	dst := atomfs.New()
	if _, err := Replay(tctx, dst, spec.New(), entries); err != nil {
		t.Fatal(err)
	}
	if got, want := dst.SnapshotKey(), src.SnapshotKey(); got != want {
		t.Fatalf("rebuild diverged:\n%s\n%s", got, want)
	}
	// Round-trip through the text format too.
	var b strings.Builder
	if err := Write(&b, entries); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	dst2 := atomfs.New()
	if _, err := Replay(tctx, dst2, nil, parsed); err != nil {
		t.Fatal(err)
	}
	if dst2.SnapshotKey() != src.SnapshotKey() {
		t.Fatal("text round-trip diverged")
	}
}
