package trace

import "context"

// tctx is the tests' root context: tests are execution roots, so the
// background context is theirs to mint.
var tctx = context.Background()
