// Package trace provides a human-readable text format for file system
// operation traces, plus a recording wrapper and a replayer. Traces make
// workloads portable artifacts: record a run against one implementation,
// replay it against another (optionally in lockstep with the abstract
// specification as a differential check), or hand-write regression traces
// for bugs.
//
// Format: one operation per line, '#' comments, blank lines ignored.
//
//	mkdir <path>
//	mknod <path>
//	rmdir <path>
//	unlink <path>
//	rename <src> <dst>
//	stat <path>
//	read <path> <off> <size>
//	write <path> <off> <base64-data>
//	truncate <path> <size>
//	readdir <path>
//
// Paths are %-quoted if they contain whitespace (strconv.Quote).
package trace

import (
	"bufio"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fsapi"
	"repro/internal/fstest"
	"repro/internal/spec"
)

// Entry is one traced operation.
type Entry struct {
	Op   spec.Op
	Args spec.Args
}

// Format renders one entry as a trace line.
func (e Entry) Format() string {
	q := func(s string) string {
		if strings.ContainsAny(s, " \t\"\\") || s == "" {
			return strconv.Quote(s)
		}
		return s
	}
	switch e.Op {
	case spec.OpRename:
		return fmt.Sprintf("rename %s %s", q(e.Args.Path), q(e.Args.Path2))
	case spec.OpRead:
		return fmt.Sprintf("read %s %d %d", q(e.Args.Path), e.Args.Off, e.Args.Size)
	case spec.OpWrite:
		return fmt.Sprintf("write %s %d %s", q(e.Args.Path), e.Args.Off,
			base64.StdEncoding.EncodeToString(e.Args.Data))
	case spec.OpTruncate:
		return fmt.Sprintf("truncate %s %d", q(e.Args.Path), e.Args.Off)
	default:
		return fmt.Sprintf("%s %s", e.Op, q(e.Args.Path))
	}
}

// Write renders a whole trace.
func Write(w io.Writer, entries []Entry) error {
	for _, e := range entries {
		if _, err := fmt.Fprintln(w, e.Format()); err != nil {
			return err
		}
	}
	return nil
}

var opByName = map[string]spec.Op{
	"mknod": spec.OpMknod, "mkdir": spec.OpMkdir, "rmdir": spec.OpRmdir,
	"unlink": spec.OpUnlink, "rename": spec.OpRename, "stat": spec.OpStat,
	"read": spec.OpRead, "write": spec.OpWrite, "truncate": spec.OpTruncate,
	"readdir": spec.OpReaddir,
}

// fields splits a line honoring quoted tokens.
func fields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			tok, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, err
			}
			out = append(out, tok)
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out, nil
}

// ParseLine parses one trace line; ok=false for blank/comment lines.
func ParseLine(line string) (Entry, bool, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Entry{}, false, nil
	}
	toks, err := fields(line)
	if err != nil {
		return Entry{}, false, err
	}
	op, known := opByName[toks[0]]
	if !known {
		return Entry{}, false, fmt.Errorf("trace: unknown op %q", toks[0])
	}
	need := func(n int) error {
		if len(toks)-1 != n {
			return fmt.Errorf("trace: %s takes %d argument(s), got %d", toks[0], n, len(toks)-1)
		}
		return nil
	}
	e := Entry{Op: op}
	switch op {
	case spec.OpRename:
		if err := need(2); err != nil {
			return Entry{}, false, err
		}
		e.Args = spec.Args{Path: toks[1], Path2: toks[2]}
	case spec.OpRead:
		if err := need(3); err != nil {
			return Entry{}, false, err
		}
		off, err1 := strconv.ParseInt(toks[2], 10, 64)
		size, err2 := strconv.Atoi(toks[3])
		if err1 != nil || err2 != nil {
			return Entry{}, false, fmt.Errorf("trace: bad read numbers %q %q", toks[2], toks[3])
		}
		e.Args = spec.Args{Path: toks[1], Off: off, Size: size}
	case spec.OpWrite:
		if err := need(3); err != nil {
			return Entry{}, false, err
		}
		off, err1 := strconv.ParseInt(toks[2], 10, 64)
		data, err2 := base64.StdEncoding.DecodeString(toks[3])
		if err1 != nil || err2 != nil {
			return Entry{}, false, fmt.Errorf("trace: bad write payload")
		}
		e.Args = spec.Args{Path: toks[1], Off: off, Data: data}
	case spec.OpTruncate:
		if err := need(2); err != nil {
			return Entry{}, false, err
		}
		size, err := strconv.ParseInt(toks[2], 10, 64)
		if err != nil {
			return Entry{}, false, fmt.Errorf("trace: bad truncate size %q", toks[2])
		}
		e.Args = spec.Args{Path: toks[1], Off: size}
	default:
		if err := need(1); err != nil {
			return Entry{}, false, err
		}
		e.Args = spec.Args{Path: toks[1]}
	}
	return e, true, nil
}

// Parse reads a whole trace.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		e, ok, err := ParseLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if ok {
			out = append(out, e)
		}
	}
	return out, sc.Err()
}

// ReplayResult summarizes a replay.
type ReplayResult struct {
	Applied int
	Errors  int // operations that returned an error (not replay failures)
}

// Replay applies entries to fs. When model is non-nil, every result is
// compared against the abstract specification in lockstep and the first
// divergence is returned as an error.
func Replay(ctx context.Context, fs fsapi.FS, model *spec.AFS, entries []Entry) (ReplayResult, error) {
	var res ReplayResult
	for i, e := range entries {
		got := fstest.ApplyFS(ctx, fs, e.Op, e.Args)
		res.Applied++
		if got.Err != nil {
			res.Errors++
		}
		if model != nil {
			want, _ := model.Apply(e.Op, e.Args)
			if !got.Equal(want) {
				return res, fmt.Errorf("trace: step %d (%s): concrete %s, spec %s",
					i, e.Format(), got, want)
			}
		}
	}
	return res, nil
}

// Recorder wraps a file system and records every operation passing
// through it (thread-safe; concurrent operations record in completion
// order).
type Recorder struct {
	inner fsapi.FS
	mu    sync.Mutex
	log   []Entry
}

var _ fsapi.FS = (*Recorder)(nil)

// NewRecorder wraps inner.
func NewRecorder(inner fsapi.FS) *Recorder { return &Recorder{inner: inner} }

// Trace returns a copy of the recorded entries.
func (r *Recorder) Trace() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Entry(nil), r.log...)
}

func (r *Recorder) record(op spec.Op, args spec.Args) {
	r.mu.Lock()
	r.log = append(r.log, Entry{Op: op, Args: args})
	r.mu.Unlock()
}

// Mknod creates an empty file.
func (r *Recorder) Mknod(ctx context.Context, path string) error {
	r.record(spec.OpMknod, spec.Args{Path: path})
	return r.inner.Mknod(ctx, path)
}

// Mkdir creates an empty directory.
func (r *Recorder) Mkdir(ctx context.Context, path string) error {
	r.record(spec.OpMkdir, spec.Args{Path: path})
	return r.inner.Mkdir(ctx, path)
}

// Rmdir removes an empty directory.
func (r *Recorder) Rmdir(ctx context.Context, path string) error {
	r.record(spec.OpRmdir, spec.Args{Path: path})
	return r.inner.Rmdir(ctx, path)
}

// Unlink removes a file.
func (r *Recorder) Unlink(ctx context.Context, path string) error {
	r.record(spec.OpUnlink, spec.Args{Path: path})
	return r.inner.Unlink(ctx, path)
}

// Rename moves src to dst.
func (r *Recorder) Rename(ctx context.Context, src, dst string) error {
	r.record(spec.OpRename, spec.Args{Path: src, Path2: dst})
	return r.inner.Rename(ctx, src, dst)
}

// Stat reports kind and size.
func (r *Recorder) Stat(ctx context.Context, path string) (fsapi.Info, error) {
	r.record(spec.OpStat, spec.Args{Path: path})
	return r.inner.Stat(ctx, path)
}

// Read fills dst with bytes at off.
func (r *Recorder) Read(ctx context.Context, path string, off int64, dst []byte) (int, error) {
	r.record(spec.OpRead, spec.Args{Path: path, Off: off, Size: len(dst)})
	return r.inner.Read(ctx, path, off, dst)
}

// Write stores data at off.
func (r *Recorder) Write(ctx context.Context, path string, off int64, data []byte) (int, error) {
	r.record(spec.OpWrite, spec.Args{Path: path, Off: off, Data: append([]byte(nil), data...)})
	return r.inner.Write(ctx, path, off, data)
}

// Truncate resizes a file.
func (r *Recorder) Truncate(ctx context.Context, path string, size int64) error {
	r.record(spec.OpTruncate, spec.Args{Path: path, Off: size})
	return r.inner.Truncate(ctx, path, size)
}

// Readdir lists entries.
func (r *Recorder) Readdir(ctx context.Context, path string) ([]string, error) {
	r.record(spec.OpReaddir, spec.Args{Path: path})
	return r.inner.Readdir(ctx, path)
}

// FromState renders an abstract state as the minimal creation trace that
// rebuilds it on an empty file system: directories in breadth-first
// order, then file creations and content writes. Combined with a
// snapshot-capable implementation this serializes a live file system
// (save = FromState(snapshot), load = Replay).
func FromState(afs *spec.AFS) []Entry {
	var entries []Entry
	type item struct {
		path string
		ino  spec.Inum
	}
	queue := []item{{path: "", ino: afs.Root}}
	var files []item
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := afs.Imap[cur.ino]
		if node == nil {
			continue
		}
		if node.Kind == spec.KindFile {
			files = append(files, cur)
			continue
		}
		if cur.path != "" {
			entries = append(entries, Entry{Op: spec.OpMkdir, Args: spec.Args{Path: cur.path}})
		}
		names := make([]string, 0, len(node.Links))
		for name := range node.Links {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			queue = append(queue, item{path: cur.path + "/" + name, ino: node.Links[name]})
		}
	}
	for _, f := range files {
		entries = append(entries, Entry{Op: spec.OpMknod, Args: spec.Args{Path: f.path}})
		if data := afs.Imap[f.ino].Data; len(data) > 0 {
			entries = append(entries, Entry{Op: spec.OpWrite,
				Args: spec.Args{Path: f.path, Off: 0, Data: append([]byte(nil), data...)}})
		}
	}
	return entries
}
