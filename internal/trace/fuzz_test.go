package trace

import "testing"

// FuzzParseLine: arbitrary input never panics the trace parser, and
// accepted lines re-format to something the parser accepts again.
func FuzzParseLine(f *testing.F) {
	for _, seed := range []string{
		"mkdir /a",
		"rename /a \"/b c\"",
		"write /f 0 aGVsbG8=",
		"read /f 10 20",
		"truncate /f 5",
		"# comment",
		"",
		`mknod "quoted \"path\""`,
		"bogus op",
		"write /f x y",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		e, ok, err := ParseLine(line)
		if err != nil || !ok {
			return
		}
		e2, ok2, err2 := ParseLine(e.Format())
		if err2 != nil || !ok2 {
			t.Fatalf("reformatted line unparseable: %q -> %q: %v", line, e.Format(), err2)
		}
		if e2.Op != e.Op || e2.Args.Path != e.Args.Path || e2.Args.Path2 != e.Args.Path2 {
			t.Fatalf("reparse mismatch: %+v vs %+v", e, e2)
		}
	})
}
