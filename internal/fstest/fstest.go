// Package fstest is a reusable test kit applied to every file system
// implementation in this repository: a functional suite, a differential
// tester that drives an implementation and the abstract specification with
// identical random operation streams, and concurrency stressors.
package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/spec"
)

// Functional runs a deterministic correctness suite over fs.
func Functional(t *testing.T, fs fsapi.FS) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	wantErr := func(err, want error) {
		t.Helper()
		if !errors.Is(err, want) {
			t.Fatalf("err = %v, want %v", err, want)
		}
	}

	must(fs.Mkdir("/a"))
	must(fs.Mkdir("/a/b"))
	must(fs.Mknod("/a/b/f"))
	wantErr(fs.Mkdir("/a"), fserr.ErrExist)
	wantErr(fs.Mknod("/a/b/f"), fserr.ErrExist)
	wantErr(fs.Mkdir("/missing/x"), fserr.ErrNotExist)
	wantErr(fs.Mkdir("/a/b/f/x"), fserr.ErrNotDir)

	// Data plane.
	n, err := fs.Write("/a/b/f", 0, []byte("hello world"))
	must(err)
	if n != 11 {
		t.Fatalf("write n = %d", n)
	}
	data, err := fs.Read("/a/b/f", 6, 5)
	must(err)
	if string(data) != "world" {
		t.Fatalf("read = %q", data)
	}
	info, err := fs.Stat("/a/b/f")
	must(err)
	if info.Kind != spec.KindFile || info.Size != 11 {
		t.Fatalf("stat = %+v", info)
	}
	must(fs.Truncate("/a/b/f", 5))
	data, err = fs.Read("/a/b/f", 0, 100)
	must(err)
	if string(data) != "hello" {
		t.Fatalf("after truncate: %q", data)
	}
	// Sparse write.
	_, err = fs.Write("/a/b/f", 100, []byte("tail"))
	must(err)
	data, err = fs.Read("/a/b/f", 50, 10)
	must(err)
	if !bytes.Equal(data, make([]byte, 10)) {
		t.Fatalf("hole not zero: %v", data)
	}

	// Readdir.
	must(fs.Mknod("/a/b/zz"))
	names, err := fs.Readdir("/a/b")
	must(err)
	if len(names) != 2 || names[0] != "f" || names[1] != "zz" {
		t.Fatalf("readdir = %v", names)
	}
	wantErr(func() error { _, err := fs.Readdir("/a/b/f"); return err }(), fserr.ErrNotDir)

	// Deletion.
	wantErr(fs.Rmdir("/a"), fserr.ErrNotEmpty)
	wantErr(fs.Unlink("/a"), fserr.ErrIsDir)
	wantErr(fs.Rmdir("/a/b/f"), fserr.ErrNotDir)
	must(fs.Unlink("/a/b/f"))
	wantErr(fs.Unlink("/a/b/f"), fserr.ErrNotExist)

	// Rename.
	must(fs.Rename("/a/b", "/c"))
	if _, err := fs.Stat("/a/b"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("source survived rename: %v", err)
	}
	if _, err := fs.Stat("/c/zz"); err != nil {
		t.Fatalf("moved child missing: %v", err)
	}
	wantErr(fs.Rename("/c", "/c/sub"), fserr.ErrInvalid)
	must(fs.Rename("/c", "/c"))
	wantErr(fs.Rename("/nope", "/x"), fserr.ErrNotExist)

	// Overwrite semantics.
	must(fs.Mknod("/t1"))
	must(fs.Mknod("/t2"))
	_, err = fs.Write("/t1", 0, []byte("one"))
	must(err)
	must(fs.Rename("/t1", "/t2"))
	data, err = fs.Read("/t2", 0, 10)
	must(err)
	if string(data) != "one" {
		t.Fatalf("overwrite lost data: %q", data)
	}
	must(fs.Mkdir("/e1"))
	must(fs.Mkdir("/e2"))
	must(fs.Mknod("/e2/inner"))
	wantErr(fs.Rename("/e1", "/e2"), fserr.ErrNotEmpty)
	wantErr(fs.Rename("/e1", "/t2"), fserr.ErrNotDir)
	wantErr(fs.Rename("/t2", "/e1"), fserr.ErrIsDir)
	must(fs.Unlink("/e2/inner"))
	must(fs.Rename("/e1", "/e2"))

	// Root is special.
	wantErr(fs.Mkdir("/"), fserr.ErrInvalid)
	wantErr(fs.Rmdir("/"), fserr.ErrInvalid)
	wantErr(fs.Rename("/", "/r"), fserr.ErrInvalid)
	wantErr(fs.Rename("/e2", "/"), fserr.ErrInvalid)
	if _, err := fs.Stat("/"); err != nil {
		t.Fatalf("stat root: %v", err)
	}
}

// OpStream generates a reproducible random operation stream over a small
// namespace, shared by the differential testers.
type OpStream struct {
	r     *rand.Rand
	names []string
}

// NewOpStream creates a stream from seed.
func NewOpStream(seed int64) *OpStream {
	return &OpStream{
		r:     rand.New(rand.NewSource(seed)),
		names: []string{"a", "b", "c", "d", "e"},
	}
}

// Next produces the next random operation.
func (s *OpStream) Next() (spec.Op, spec.Args) {
	path := func() string {
		depth := 1 + s.r.Intn(3)
		p := ""
		for i := 0; i < depth; i++ {
			p += "/" + s.names[s.r.Intn(len(s.names))]
		}
		return p
	}
	switch s.r.Intn(11) {
	case 0:
		return spec.OpMkdir, spec.Args{Path: path()}
	case 1:
		return spec.OpMknod, spec.Args{Path: path()}
	case 2:
		return spec.OpRmdir, spec.Args{Path: path()}
	case 3:
		return spec.OpUnlink, spec.Args{Path: path()}
	case 4, 5:
		return spec.OpRename, spec.Args{Path: path(), Path2: path()}
	case 6:
		return spec.OpStat, spec.Args{Path: path()}
	case 7:
		data := make([]byte, 1+s.r.Intn(32))
		s.r.Read(data)
		return spec.OpWrite, spec.Args{Path: path(), Off: int64(s.r.Intn(16)), Data: data}
	case 8:
		return spec.OpRead, spec.Args{Path: path(), Off: int64(s.r.Intn(16)), Size: 1 + s.r.Intn(32)}
	case 9:
		return spec.OpTruncate, spec.Args{Path: path(), Off: int64(s.r.Intn(48))}
	default:
		return spec.OpReaddir, spec.Args{Path: path()}
	}
}

// ApplyFS drives one operation against a concrete FS and renders the
// result in the specification's Ret form.
func ApplyFS(fs fsapi.FS, op spec.Op, args spec.Args) spec.Ret {
	switch op {
	case spec.OpMknod:
		return spec.ErrRet(fs.Mknod(args.Path))
	case spec.OpMkdir:
		return spec.ErrRet(fs.Mkdir(args.Path))
	case spec.OpRmdir:
		return spec.ErrRet(fs.Rmdir(args.Path))
	case spec.OpUnlink:
		return spec.ErrRet(fs.Unlink(args.Path))
	case spec.OpRename:
		return spec.ErrRet(fs.Rename(args.Path, args.Path2))
	case spec.OpStat:
		info, err := fs.Stat(args.Path)
		if err != nil {
			return spec.ErrRet(err)
		}
		return spec.Ret{Kind: info.Kind, Size: info.Size}
	case spec.OpRead:
		data, err := fs.Read(args.Path, args.Off, args.Size)
		if err != nil {
			return spec.ErrRet(err)
		}
		return spec.Ret{Data: data, N: len(data)}
	case spec.OpWrite:
		n, err := fs.Write(args.Path, args.Off, args.Data)
		if err != nil {
			return spec.ErrRet(err)
		}
		return spec.Ret{N: n}
	case spec.OpTruncate:
		return spec.ErrRet(fs.Truncate(args.Path, args.Off))
	case spec.OpReaddir:
		names, err := fs.Readdir(args.Path)
		if err != nil {
			return spec.ErrRet(err)
		}
		return spec.Ret{Names: names}
	default:
		panic("fstest: unknown op")
	}
}

// Differential drives fs and the abstract specification with the same
// random single-threaded stream and requires identical results throughout:
// the concrete implementation sequentially refines the spec.
func Differential(t *testing.T, fs fsapi.FS, seed int64, steps int) {
	t.Helper()
	model := spec.New()
	stream := NewOpStream(seed)
	for i := 0; i < steps; i++ {
		op, args := stream.Next()
		want, _ := model.Apply(op, args)
		got := ApplyFS(fs, op, args)
		if !got.Equal(want) {
			t.Fatalf("seed %d step %d: %s %s: concrete %s, spec %s", seed, i, op, args, got, want)
		}
	}
}

// Stress runs nWorkers goroutines, each performing steps random operations
// over a shared namespace. It returns after all workers finish; the caller
// checks invariants (monitor violations, tree sanity) afterwards.
func Stress(t *testing.T, fs fsapi.FS, nWorkers, steps int, seed int64) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := NewOpStream(seed + int64(w)*7919)
			for i := 0; i < steps; i++ {
				op, args := stream.Next()
				ApplyFS(fs, op, args)
			}
		}(w)
	}
	wg.Wait()
}

// DeepTree builds a directory chain /d0/d1/.../d{depth-1} and returns its
// path.
func DeepTree(t testing.TB, fs fsapi.FS, depth int) string {
	t.Helper()
	path := ""
	for i := 0; i < depth; i++ {
		path = fmt.Sprintf("%s/d%d", path, i)
		if err := fs.Mkdir(path); err != nil {
			t.Fatal(err)
		}
	}
	return path
}
