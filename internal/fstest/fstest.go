// Package fstest is a reusable test kit applied to every file system
// implementation in this repository: a functional suite, a differential
// tester that drives an implementation and the abstract specification with
// identical random operation streams, and concurrency stressors.
package fstest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fsapi"
	"repro/internal/fserr"
	"repro/internal/spec"
)

// Functional runs a deterministic correctness suite over fs.
func Functional(t *testing.T, fs fsapi.FS) {
	t.Helper()
	ctx := t.Context()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	wantErr := func(err, want error) {
		t.Helper()
		if !errors.Is(err, want) {
			t.Fatalf("err = %v, want %v", err, want)
		}
	}

	must(fs.Mkdir(ctx, "/a"))
	must(fs.Mkdir(ctx, "/a/b"))
	must(fs.Mknod(ctx, "/a/b/f"))
	wantErr(fs.Mkdir(ctx, "/a"), fserr.ErrExist)
	wantErr(fs.Mknod(ctx, "/a/b/f"), fserr.ErrExist)
	wantErr(fs.Mkdir(ctx, "/missing/x"), fserr.ErrNotExist)
	wantErr(fs.Mkdir(ctx, "/a/b/f/x"), fserr.ErrNotDir)

	// Data plane.
	n, err := fs.Write(ctx, "/a/b/f", 0, []byte("hello world"))
	must(err)
	if n != 11 {
		t.Fatalf("write n = %d", n)
	}
	data, err := fsapi.ReadAll(ctx, fs, "/a/b/f", 6, 5)
	must(err)
	if string(data) != "world" {
		t.Fatalf("read = %q", data)
	}
	info, err := fs.Stat(ctx, "/a/b/f")
	must(err)
	if info.Kind != spec.KindFile || info.Size != 11 {
		t.Fatalf("stat = %+v", info)
	}
	must(fs.Truncate(ctx, "/a/b/f", 5))
	data, err = fsapi.ReadAll(ctx, fs, "/a/b/f", 0, 100)
	must(err)
	if string(data) != "hello" {
		t.Fatalf("after truncate: %q", data)
	}
	// Sparse write.
	_, err = fs.Write(ctx, "/a/b/f", 100, []byte("tail"))
	must(err)
	data, err = fsapi.ReadAll(ctx, fs, "/a/b/f", 50, 10)
	must(err)
	if !bytes.Equal(data, make([]byte, 10)) {
		t.Fatalf("hole not zero: %v", data)
	}

	// Readdir.
	must(fs.Mknod(ctx, "/a/b/zz"))
	names, err := fs.Readdir(ctx, "/a/b")
	must(err)
	if len(names) != 2 || names[0] != "f" || names[1] != "zz" {
		t.Fatalf("readdir = %v", names)
	}
	wantErr(func() error { _, err := fs.Readdir(ctx, "/a/b/f"); return err }(), fserr.ErrNotDir)

	// Deletion.
	wantErr(fs.Rmdir(ctx, "/a"), fserr.ErrNotEmpty)
	wantErr(fs.Unlink(ctx, "/a"), fserr.ErrIsDir)
	wantErr(fs.Rmdir(ctx, "/a/b/f"), fserr.ErrNotDir)
	must(fs.Unlink(ctx, "/a/b/f"))
	wantErr(fs.Unlink(ctx, "/a/b/f"), fserr.ErrNotExist)

	// Rename.
	must(fs.Rename(ctx, "/a/b", "/c"))
	if _, err := fs.Stat(ctx, "/a/b"); !errors.Is(err, fserr.ErrNotExist) {
		t.Fatalf("source survived rename: %v", err)
	}
	if _, err := fs.Stat(ctx, "/c/zz"); err != nil {
		t.Fatalf("moved child missing: %v", err)
	}
	wantErr(fs.Rename(ctx, "/c", "/c/sub"), fserr.ErrInvalid)
	must(fs.Rename(ctx, "/c", "/c"))
	wantErr(fs.Rename(ctx, "/nope", "/x"), fserr.ErrNotExist)

	// Overwrite semantics.
	must(fs.Mknod(ctx, "/t1"))
	must(fs.Mknod(ctx, "/t2"))
	_, err = fs.Write(ctx, "/t1", 0, []byte("one"))
	must(err)
	must(fs.Rename(ctx, "/t1", "/t2"))
	data, err = fsapi.ReadAll(ctx, fs, "/t2", 0, 10)
	must(err)
	if string(data) != "one" {
		t.Fatalf("overwrite lost data: %q", data)
	}
	must(fs.Mkdir(ctx, "/e1"))
	must(fs.Mkdir(ctx, "/e2"))
	must(fs.Mknod(ctx, "/e2/inner"))
	wantErr(fs.Rename(ctx, "/e1", "/e2"), fserr.ErrNotEmpty)
	wantErr(fs.Rename(ctx, "/e1", "/t2"), fserr.ErrNotDir)
	wantErr(fs.Rename(ctx, "/t2", "/e1"), fserr.ErrIsDir)
	must(fs.Unlink(ctx, "/e2/inner"))
	must(fs.Rename(ctx, "/e1", "/e2"))

	// Root is special.
	wantErr(fs.Mkdir(ctx, "/"), fserr.ErrInvalid)
	wantErr(fs.Rmdir(ctx, "/"), fserr.ErrInvalid)
	wantErr(fs.Rename(ctx, "/", "/r"), fserr.ErrInvalid)
	wantErr(fs.Rename(ctx, "/e2", "/"), fserr.ErrInvalid)
	if _, err := fs.Stat(ctx, "/"); err != nil {
		t.Fatalf("stat root: %v", err)
	}
}

// OpStream generates a reproducible random operation stream over a small
// namespace, shared by the differential testers.
type OpStream struct {
	r     *rand.Rand
	names []string
}

// NewOpStream creates a stream from seed.
func NewOpStream(seed int64) *OpStream {
	return &OpStream{
		r:     rand.New(rand.NewSource(seed)),
		names: []string{"a", "b", "c", "d", "e"},
	}
}

// Next produces the next random operation.
func (s *OpStream) Next() (spec.Op, spec.Args) {
	path := func() string {
		depth := 1 + s.r.Intn(3)
		p := ""
		for i := 0; i < depth; i++ {
			p += "/" + s.names[s.r.Intn(len(s.names))]
		}
		return p
	}
	switch s.r.Intn(11) {
	case 0:
		return spec.OpMkdir, spec.Args{Path: path()}
	case 1:
		return spec.OpMknod, spec.Args{Path: path()}
	case 2:
		return spec.OpRmdir, spec.Args{Path: path()}
	case 3:
		return spec.OpUnlink, spec.Args{Path: path()}
	case 4, 5:
		return spec.OpRename, spec.Args{Path: path(), Path2: path()}
	case 6:
		return spec.OpStat, spec.Args{Path: path()}
	case 7:
		data := make([]byte, 1+s.r.Intn(32))
		s.r.Read(data)
		return spec.OpWrite, spec.Args{Path: path(), Off: int64(s.r.Intn(16)), Data: data}
	case 8:
		return spec.OpRead, spec.Args{Path: path(), Off: int64(s.r.Intn(16)), Size: 1 + s.r.Intn(32)}
	case 9:
		return spec.OpTruncate, spec.Args{Path: path(), Off: int64(s.r.Intn(48))}
	default:
		return spec.OpReaddir, spec.Args{Path: path()}
	}
}

// ApplyFS drives one operation against a concrete FS and renders the
// result in the specification's Ret form.
func ApplyFS(ctx context.Context, fs fsapi.FS, op spec.Op, args spec.Args) spec.Ret {
	switch op {
	case spec.OpMknod:
		return spec.ErrRet(fs.Mknod(ctx, args.Path))
	case spec.OpMkdir:
		return spec.ErrRet(fs.Mkdir(ctx, args.Path))
	case spec.OpRmdir:
		return spec.ErrRet(fs.Rmdir(ctx, args.Path))
	case spec.OpUnlink:
		return spec.ErrRet(fs.Unlink(ctx, args.Path))
	case spec.OpRename:
		return spec.ErrRet(fs.Rename(ctx, args.Path, args.Path2))
	case spec.OpStat:
		info, err := fs.Stat(ctx, args.Path)
		if err != nil {
			return spec.ErrRet(err)
		}
		return spec.Ret{Kind: info.Kind, Size: info.Size}
	case spec.OpRead:
		dst := make([]byte, args.Size)
		n, err := fs.Read(ctx, args.Path, args.Off, dst)
		if err != nil {
			return spec.ErrRet(err)
		}
		return spec.Ret{Data: dst[:n:n], N: n}
	case spec.OpWrite:
		n, err := fs.Write(ctx, args.Path, args.Off, args.Data)
		if err != nil {
			return spec.ErrRet(err)
		}
		return spec.Ret{N: n}
	case spec.OpTruncate:
		return spec.ErrRet(fs.Truncate(ctx, args.Path, args.Off))
	case spec.OpReaddir:
		names, err := fs.Readdir(ctx, args.Path)
		if err != nil {
			return spec.ErrRet(err)
		}
		return spec.Ret{Names: names}
	default:
		panic("fstest: unknown op")
	}
}

// Differential drives fs and the abstract specification with the same
// random single-threaded stream and requires identical results throughout:
// the concrete implementation sequentially refines the spec.
func Differential(t *testing.T, fs fsapi.FS, seed int64, steps int) {
	t.Helper()
	ctx := t.Context()
	model := spec.New()
	stream := NewOpStream(seed)
	for i := 0; i < steps; i++ {
		op, args := stream.Next()
		want, _ := model.Apply(op, args)
		got := ApplyFS(ctx, fs, op, args)
		if !got.Equal(want) {
			t.Fatalf("seed %d step %d: %s %s: concrete %s, spec %s", seed, i, op, args, got, want)
		}
	}
}

// Stress runs nWorkers goroutines, each performing steps random operations
// over a shared namespace. It returns after all workers finish; the caller
// checks invariants (monitor violations, tree sanity) afterwards.
func Stress(t *testing.T, fs fsapi.FS, nWorkers, steps int, seed int64) {
	t.Helper()
	ctx := t.Context()
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := NewOpStream(seed + int64(w)*7919)
			for i := 0; i < steps; i++ {
				op, args := stream.Next()
				ApplyFS(ctx, fs, op, args)
			}
		}(w)
	}
	wg.Wait()
}

// DeepTree builds a directory chain /d0/d1/.../d{depth-1} and returns its
// path.
func DeepTree(t testing.TB, fs fsapi.FS, depth int) string {
	t.Helper()
	ctx := t.Context()
	path := ""
	for i := 0; i < depth; i++ {
		path = fmt.Sprintf("%s/d%d", path, i)
		if err := fs.Mkdir(ctx, path); err != nil {
			t.Fatal(err)
		}
	}
	return path
}
