// Package sweep performs systematic concurrency testing of the monitored
// AtomFS with a preemption bound of one (in the style of CHESS): for a
// pair of operations (A, B), it first counts every instrumentation point
// B passes through when run alone, then replays one schedule per point —
// B runs until that exact point, parks there, A runs to completion, B
// resumes. Every single-preemption interleaving of the pair is therefore
// covered exhaustively, and each schedule is verified three ways (monitor
// invariants, quiescent abstraction relation, offline linearizability).
//
// Unlike the randomized explorer (internal/explore), a sweep's coverage
// statement is exact: "operation B was interrupted by a full run of A at
// every one of its N instrumentation points". The rename-vs-everything
// pair catalogue reproduces the §3.2 combination matrix as a verification
// (rather than detection) experiment.
package sweep

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/atomfs"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/spec"
)

// bgCtx is this driver package's root context: the study/exploration
// harness is an execution root (like main), so the background context is
// its to mint. ctxlint:allow
var bgCtx = context.Background()

// OpSpec names one operation of a pair.
type OpSpec struct {
	Name string
	Run  func(fs *atomfs.FS) error
	// Op is the spec-level kind used to match hook events for the parked
	// operation.
	Op spec.Op
}

// Pair is a swept combination: B is the interrupted operation, A the
// interrupting one. Setup builds the initial tree. Options configures
// the FS under sweep (e.g. atomfs.WithEpoch()) — they apply both to the
// point-counting solo run and to every schedule, so the counted points
// match the replayed ones.
type Pair struct {
	Name    string
	Setup   []string // directories/files: paths ending in "/" are dirs
	B       OpSpec
	A       OpSpec
	Options []atomfs.Option
}

// Outcome reports one pair's sweep.
type Outcome struct {
	Pair       Pair
	Points     int // instrumentation points B passes through alone
	Schedules  int // schedules executed (== Points)
	Overlapped int // schedules where A completed while B was parked
	Coalesced  int // schedules where A had to wait for B (no overlap possible)
	Helped     int // schedules in which some operation took an external LP
	Failures   []string
}

func (o Outcome) String() string {
	return fmt.Sprintf("%s: %d schedules (%d overlapped, %d coalesced, %d with helping), %d failures",
		o.Pair.Name, o.Schedules, o.Overlapped, o.Coalesced, o.Helped, len(o.Failures))
}

// buildTree applies the pair's setup to a fresh FS.
func buildTree(fs *atomfs.FS, setup []string) error {
	for _, p := range setup {
		if p[len(p)-1] == '/' {
			if err := fs.Mkdir(bgCtx, p[:len(p)-1]); err != nil {
				return err
			}
		} else if err := fs.Mknod(bgCtx, p); err != nil {
			return err
		}
	}
	return nil
}

// countPoints runs B alone and counts its hook events.
func countPoints(p Pair) (int, error) {
	fs := atomfs.New(p.Options...)
	if err := buildTree(fs, p.Setup); err != nil {
		return 0, err
	}
	count := 0
	fs.SetHook(func(ev atomfs.HookEvent) {
		if ev.Op == p.B.Op {
			count++
		}
	})
	_ = p.B.Run(fs) // B's own error is schedule-dependent, not a failure
	return count, nil
}

// runSchedule executes one schedule: B parks at its k'th instrumentation
// point, A runs, B resumes. Returns (overlapped, helped, error).
func runSchedule(p Pair, k int) (bool, bool, error) {
	rec := history.NewRecorder()
	mon := core.NewMonitor(core.Config{Recorder: rec, CheckGoodAFS: true})
	fs := atomfs.New(append([]atomfs.Option{atomfs.WithMonitor(mon)}, p.Options...)...)
	if err := buildTree(fs, p.Setup); err != nil {
		return false, false, err
	}
	pre := mon.AbstractState()
	cut := rec.Len()

	parked := make(chan struct{})
	release := make(chan struct{})
	// A and B may share an op kind (the rename+rename pair), so the
	// counter needs a lock; parking blocks outside it.
	var hookMu sync.Mutex
	seen := 0
	fs.SetHook(func(ev atomfs.HookEvent) {
		if ev.Op != p.B.Op {
			return
		}
		hookMu.Lock()
		seen++
		shouldPark := seen == k
		hookMu.Unlock()
		if shouldPark {
			close(parked)
			<-release
		}
	})

	bDone := make(chan error, 1)
	go func() { bDone <- p.B.Run(fs) }()
	select {
	case <-parked:
	case err := <-bDone:
		// B finished before reaching point k (its path through the hooks
		// differs under monitoring?) — treat as a harness error.
		return false, false, fmt.Errorf("B finished (err=%v) before point %d", err, k)
	case <-time.After(10 * time.Second):
		return false, false, fmt.Errorf("B never reached point %d", k)
	}

	aDone := make(chan error, 1)
	go func() { aDone <- p.A.Run(fs) }()
	overlapped := true
	select {
	case <-aDone:
	case <-time.After(50 * time.Millisecond):
		// A is blocked behind B's parked locks; no overlap is possible at
		// this point. Release B and let both finish.
		overlapped = false
	}
	close(release)
	<-bDone
	if overlapped {
		// A already completed.
	} else {
		<-aDone
	}
	fs.SetHook(nil)

	if vs := mon.Violations(); len(vs) > 0 {
		return overlapped, false, fmt.Errorf("point %d: %v", k, vs)
	}
	if err := mon.Quiesce(); err != nil {
		return overlapped, false, fmt.Errorf("point %d: %w", k, err)
	}
	events := rec.Events()[cut:]
	res, err := lincheck.Check(pre, events)
	if err != nil {
		return overlapped, false, fmt.Errorf("point %d: %w", k, err)
	}
	if !res.Linearizable {
		return overlapped, false, fmt.Errorf("point %d: history not linearizable", k)
	}
	helped := false
	for _, e := range events {
		if e.Kind == history.EvLin && e.Helper != e.Tid {
			helped = true
		}
	}
	return overlapped, helped, nil
}

// Run sweeps one pair over every instrumentation point.
func Run(p Pair) Outcome {
	out := Outcome{Pair: p}
	points, err := countPoints(p)
	if err != nil {
		out.Failures = append(out.Failures, err.Error())
		return out
	}
	out.Points = points
	for k := 1; k <= points; k++ {
		overlapped, helped, err := runSchedule(p, k)
		out.Schedules++
		if overlapped {
			out.Overlapped++
		} else {
			out.Coalesced++
		}
		if helped {
			out.Helped++
		}
		if err != nil {
			out.Failures = append(out.Failures, err.Error())
		}
	}
	return out
}

// Catalogue returns the rename-vs-everything pairs of the §3.2 matrix,
// each arranged so the interrupting rename breaks the interrupted
// operation's traversed path.
func Catalogue() []Pair {
	setup := []string{"/a/", "/a/b/", "/a/b/c/", "/a/b/victim", "/a/b/olddir/", "/x/"}
	renameA := OpSpec{
		Name: "rename(/a,/x/a)",
		Run:  func(fs *atomfs.FS) error { return fs.Rename(bgCtx, "/a", "/x/a") },
		Op:   spec.OpRename,
	}
	return []Pair{
		{Name: "rename+create", Setup: setup, A: renameA,
			B: OpSpec{Name: "mknod(/a/b/c/new)", Op: spec.OpMknod,
				Run: func(fs *atomfs.FS) error { return fs.Mknod(bgCtx, "/a/b/c/new") }}},
		{Name: "rename+mkdir", Setup: setup, A: renameA,
			B: OpSpec{Name: "mkdir(/a/b/c/newdir)", Op: spec.OpMkdir,
				Run: func(fs *atomfs.FS) error { return fs.Mkdir(bgCtx, "/a/b/c/newdir") }}},
		{Name: "rename+unlink", Setup: setup, A: renameA,
			B: OpSpec{Name: "unlink(/a/b/victim)", Op: spec.OpUnlink,
				Run: func(fs *atomfs.FS) error { return fs.Unlink(bgCtx, "/a/b/victim") }}},
		{Name: "rename+rmdir", Setup: setup, A: renameA,
			B: OpSpec{Name: "rmdir(/a/b/olddir)", Op: spec.OpRmdir,
				Run: func(fs *atomfs.FS) error { return fs.Rmdir(bgCtx, "/a/b/olddir") }}},
		{Name: "rename+rename", Setup: setup, A: renameA,
			B: OpSpec{Name: "rename(/a/b/victim,/a/b/moved)", Op: spec.OpRename,
				Run: func(fs *atomfs.FS) error { return fs.Rename(bgCtx, "/a/b/victim", "/a/b/moved") }}},
		{Name: "rename+stat", Setup: setup, A: renameA,
			B: OpSpec{Name: "stat(/a/b/c)", Op: spec.OpStat,
				Run: func(fs *atomfs.FS) error { _, err := fs.Stat(bgCtx, "/a/b/c"); return err }}},
		{Name: "rename+readdir", Setup: setup, A: renameA,
			B: OpSpec{Name: "readdir(/a/b)", Op: spec.OpReaddir,
				Run: func(fs *atomfs.FS) error { _, err := fs.Readdir(bgCtx, "/a/b"); return err }}},
	}
}

// EpochCatalogue is the §3.2 matrix swept again under epoch-based
// reclamation (atomfs.WithEpoch()): the same single-preemption coverage
// statement, but now the interrupted reads traverse pinned and lock-free,
// the interrupting rename retires detached entries into limbo, and the
// read LPs go through the monitor's ReadEpochEntry rule. Every schedule
// must still verify three ways — this is the exhaustive-interleaving
// counterpart of the schedule fuzzer's randomized epoch coverage.
func EpochCatalogue() []Pair {
	pairs := Catalogue()
	for i := range pairs {
		pairs[i].Name += "/epoch"
		pairs[i].Options = []atomfs.Option{atomfs.WithEpoch()}
	}
	return pairs
}
