package sweep

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/atomfs"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/spec"
)

// Triple is a three-operation schedule family: C parks at each of its
// points, then B parks at each of its points, then A runs to completion,
// then B and C are released (in both orders). With |B| and |C|
// instrumentation points this yields 2·|B|·|C| schedules — exhaustive
// single-preemption-per-operation coverage of the three-way interleavings
// that produce recursive helping (the Figure-4(c) shape).
type Triple struct {
	Name  string
	Setup []string
	C     OpSpec // parks first (deepest)
	B     OpSpec // parks second
	A     OpSpec // runs to completion while B and C are parked
}

// TripleOutcome reports one triple's sweep.
type TripleOutcome struct {
	Triple    Triple
	Schedules int
	Helped    int // schedules where >= 2 operations took external LPs
	Failures  []string
}

func (o TripleOutcome) String() string {
	return fmt.Sprintf("%s: %d schedules (%d with multi-helping), %d failures",
		o.Triple.Name, o.Schedules, o.Helped, len(o.Failures))
}

// countPointsFor runs op alone on the triple's tree and counts its hooks.
func countPointsFor(setup []string, op OpSpec) (int, error) {
	fs := atomfs.New()
	if err := buildTree(fs, setup); err != nil {
		return 0, err
	}
	count := 0
	fs.SetHook(func(ev atomfs.HookEvent) {
		if ev.Op == op.Op {
			count++
		}
	})
	_ = op.Run(fs)
	return count, nil
}

// runTripleSchedule executes one (j, k, releaseBFirst) schedule.
func runTripleSchedule(tr Triple, j, k int, releaseBFirst bool) (int, error) {
	rec := history.NewRecorder()
	mon := core.NewMonitor(core.Config{Recorder: rec, CheckGoodAFS: true})
	fs := atomfs.New(atomfs.WithMonitor(mon))
	if err := buildTree(fs, tr.Setup); err != nil {
		return 0, err
	}
	pre := mon.AbstractState()
	cut := rec.Len()

	type parkCtl struct {
		parked  chan struct{}
		release chan struct{}
		seen    int
		target  int
		op      spec.Op
	}
	cCtl := &parkCtl{parked: make(chan struct{}), release: make(chan struct{}), target: k, op: tr.C.Op}
	bCtl := &parkCtl{parked: make(chan struct{}), release: make(chan struct{}), target: j, op: tr.B.Op}
	// A's events can share an op kind with B's (rename), so the counters
	// need a lock; the park itself blocks outside it.
	var hookMu sync.Mutex
	fs.SetHook(func(ev atomfs.HookEvent) {
		for _, ctl := range []*parkCtl{cCtl, bCtl} {
			if ev.Op != ctl.op {
				continue
			}
			hookMu.Lock()
			ctl.seen++
			shouldPark := ctl.seen == ctl.target
			hookMu.Unlock()
			if shouldPark {
				close(ctl.parked)
				<-ctl.release
			}
		}
	})

	wait := func(ch chan struct{}, what string) error {
		select {
		case <-ch:
			return nil
		case <-time.After(10 * time.Second):
			return fmt.Errorf("%s never parked", what)
		}
	}
	cDone := make(chan error, 1)
	go func() { cDone <- tr.C.Run(fs) }()
	if err := wait(cCtl.parked, "C"); err != nil {
		close(cCtl.release)
		<-cDone
		return 0, err
	}
	bDone := make(chan error, 1)
	go func() { bDone <- tr.B.Run(fs) }()
	// B may be blocked behind C's held locks; give it a moment, then
	// proceed either way (a coalesced B still yields a valid schedule).
	bParked := true
	select {
	case <-bCtl.parked:
	case <-time.After(50 * time.Millisecond):
		bParked = false
	}

	aDone := make(chan error, 1)
	go func() { aDone <- tr.A.Run(fs) }()
	aFinished := false
	select {
	case <-aDone:
		aFinished = true
	case <-time.After(50 * time.Millisecond):
		// A is blocked behind a parked op; releases below unblock it.
	}

	first, second := bCtl, cCtl
	if !releaseBFirst {
		first, second = cCtl, bCtl
	}
	close(first.release)
	time.Sleep(time.Millisecond)
	close(second.release)
	<-cDone
	<-bDone
	if !aFinished {
		<-aDone
	}
	_ = bParked
	fs.SetHook(nil)

	if vs := mon.Violations(); len(vs) > 0 {
		return 0, fmt.Errorf("j=%d k=%d bFirst=%v: %v", j, k, releaseBFirst, vs)
	}
	if err := mon.Quiesce(); err != nil {
		return 0, fmt.Errorf("j=%d k=%d bFirst=%v: %w", j, k, releaseBFirst, err)
	}
	events := rec.Events()[cut:]
	res, err := lincheck.Check(pre, events)
	if err != nil {
		return 0, fmt.Errorf("j=%d k=%d bFirst=%v: %w", j, k, releaseBFirst, err)
	}
	if !res.Linearizable {
		return 0, fmt.Errorf("j=%d k=%d bFirst=%v: history not linearizable", j, k, releaseBFirst)
	}
	helped := 0
	for _, e := range events {
		if e.Kind == history.EvLin && e.Helper != e.Tid {
			helped++
		}
	}
	return helped, nil
}

// RunTriple sweeps every (j, k, order) schedule of the triple.
func RunTriple(tr Triple) TripleOutcome {
	out := TripleOutcome{Triple: tr}
	bPoints, err := countPointsFor(tr.Setup, tr.B)
	if err != nil {
		out.Failures = append(out.Failures, err.Error())
		return out
	}
	cPoints, err := countPointsFor(tr.Setup, tr.C)
	if err != nil {
		out.Failures = append(out.Failures, err.Error())
		return out
	}
	for k := 1; k <= cPoints; k++ {
		for j := 1; j <= bPoints; j++ {
			for _, bFirst := range []bool{true, false} {
				helped, err := runTripleSchedule(tr, j, k, bFirst)
				out.Schedules++
				if helped >= 2 {
					out.Helped++
				}
				if err != nil {
					out.Failures = append(out.Failures, err.Error())
				}
			}
		}
	}
	return out
}

// Fig4cTriple is the recursive-helping configuration: a stat under t2's
// rename source, t2's rename into t1's rename source subtree, and t1's
// rename as the committing helper.
func Fig4cTriple() Triple {
	setup := []string{"/a/", "/a/e/", "/a/e/f", "/b/", "/b/c/", "/b/c/d/"}
	return Triple{
		Name:  "fig4c-family",
		Setup: setup,
		C: OpSpec{Name: "stat(/a/e/f)", Op: spec.OpStat,
			Run: func(fs *atomfs.FS) error { _, err := fs.Stat(bgCtx, "/a/e/f"); return err }},
		B: OpSpec{Name: "rename(/a/e,/b/c/d/e)", Op: spec.OpRename,
			Run: func(fs *atomfs.FS) error { return fs.Rename(bgCtx, "/a/e", "/b/c/d/e") }},
		A: OpSpec{Name: "rename(/b/c,/b/g)", Op: spec.OpRename,
			Run: func(fs *atomfs.FS) error { return fs.Rename(bgCtx, "/b/c", "/b/g") }},
	}
}

// DebugPoints exposes point counts for diagnostics.
func DebugPoints(tr Triple) (int, int, error) {
	b, err := countPointsFor(tr.Setup, tr.B)
	if err != nil {
		return 0, 0, err
	}
	c, err := countPointsFor(tr.Setup, tr.C)
	return b, c, err
}

// DebugRunOne exposes a single triple schedule for diagnostics.
func DebugRunOne(tr Triple, j, k int, bFirst bool) (int, error) {
	return runTripleSchedule(tr, j, k, bFirst)
}
