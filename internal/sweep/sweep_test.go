package sweep

import (
	"testing"
)

// TestCatalogueSweep runs the full rename-vs-everything sweep: every
// single-preemption interleaving of every pair must verify cleanly.
func TestCatalogueSweep(t *testing.T) {
	totalSchedules, totalHelped := 0, 0
	for _, p := range Catalogue() {
		out := Run(p)
		for _, f := range out.Failures {
			t.Errorf("%s: %s", p.Name, f)
		}
		if out.Points == 0 {
			t.Errorf("%s: no instrumentation points found", p.Name)
		}
		if out.Schedules != out.Points {
			t.Errorf("%s: %d schedules for %d points", p.Name, out.Schedules, out.Points)
		}
		totalSchedules += out.Schedules
		totalHelped += out.Helped
		t.Logf("%s", out)
	}
	if totalHelped == 0 {
		t.Error("no schedule exercised helping; the sweep is not reaching external LPs")
	}
	t.Logf("total: %d schedules verified", totalSchedules)
}

// TestSingleScheduleDetail pins down one known-interesting schedule: the
// mkdir interrupted right before its LP (its deepest point with lock
// held) must be helped by the rename.
func TestSingleScheduleDetail(t *testing.T) {
	p := Catalogue()[1] // rename+mkdir
	points, err := countPoints(p)
	if err != nil || points < 4 {
		t.Fatalf("points = %d err = %v", points, err)
	}
	helpedAny := false
	for k := 1; k <= points; k++ {
		overlapped, helped, err := runSchedule(p, k)
		if err != nil {
			t.Fatalf("point %d: %v", k, err)
		}
		if helped && !overlapped {
			t.Errorf("point %d: helped without overlap?", k)
		}
		helpedAny = helpedAny || helped
	}
	if !helpedAny {
		t.Error("no point produced an external LP")
	}
}

// TestFig4cTripleSweep: every single-preemption-per-operation schedule of
// the recursive-helping triple verifies cleanly, and some schedules
// linearize two operations inside the outer rename (multi-helping).
func TestFig4cTripleSweep(t *testing.T) {
	out := RunTriple(Fig4cTriple())
	for _, f := range out.Failures {
		t.Errorf("%s", f)
	}
	if out.Schedules < 50 {
		t.Fatalf("only %d schedules", out.Schedules)
	}
	if out.Helped == 0 {
		t.Error("no schedule exercised multi-helping")
	}
	t.Logf("%s", out)
}

// TestEpochCatalogueSweep re-runs the rename-vs-everything matrix with
// epoch-based reclamation on: reads walk pinned and lock-free, deletes
// retire into limbo, and every single-preemption schedule must still
// verify (monitor, quiescence, linearizability). Helping must survive the
// mode switch — the epoch fast path refuses its LP whenever a helper is
// queued, so helped schedules fall back and linearize externally.
func TestEpochCatalogueSweep(t *testing.T) {
	totalSchedules, totalHelped := 0, 0
	for _, p := range EpochCatalogue() {
		out := Run(p)
		for _, f := range out.Failures {
			t.Errorf("%s: %s", p.Name, f)
		}
		if out.Points == 0 {
			t.Errorf("%s: no instrumentation points found", p.Name)
		}
		totalSchedules += out.Schedules
		totalHelped += out.Helped
		t.Logf("%s", out)
	}
	if totalHelped == 0 {
		t.Error("no epoch schedule exercised helping")
	}
	t.Logf("total: %d epoch schedules verified", totalSchedules)
}
