// Package atomfs is the public API of the AtomFS reproduction: the
// fine-grained, lock-coupling, linearizable, in-memory concurrent file
// system of "Using Concurrent Relational Logic with Helpers for Verifying
// the AtomFS File System" (SOSP 2019), together with the CRL-H runtime
// verification framework, the baseline file systems used by the paper's
// evaluation, a VFS layer providing file descriptors, and a FUSE-like
// network dispatch layer.
//
// # Quick start
//
//	fs := atomfs.New()
//	_ = fs.Mkdir(ctx, "/docs")
//	_, _ = fs.Write(ctx, "/docs/hello", 0, []byte("hi"))
//
// # Verified runs
//
// Attach a CRL-H monitor to check linearizability, the helper mechanism,
// and all Table-1 invariants at runtime:
//
//	mon := atomfs.NewMonitor(atomfs.MonitorConfig{CheckGoodAFS: true})
//	fs := atomfs.New(atomfs.WithMonitor(mon))
//	// ... concurrent operations ...
//	if err := mon.Quiesce(); err != nil { ... }
//	for _, v := range mon.Violations() { ... }
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper's reproduced figures and tables.
package atomfs

import (
	"net"

	"repro/internal/atomfs"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/fsapi"
	"repro/internal/fuse"
	"repro/internal/history"
	"repro/internal/lincheck"
	"repro/internal/memfs"
	"repro/internal/mount"
	"repro/internal/obs"
	"repro/internal/retryfs"
	"repro/internal/slowfs"
	"repro/internal/spec"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// FS is the path-based POSIX-like interface implemented by every file
// system in this module.
type FS = fsapi.FS

// Info is a stat result.
type Info = fsapi.Info

// ReadAll reads size bytes at off into a freshly allocated buffer — the
// convenience form of FS.Read for callers that do not manage buffers.
var ReadAll = fsapi.ReadAll

// Kind distinguishes files from directories.
type Kind = spec.Kind

// Inode kinds.
const (
	KindFile = spec.KindFile
	KindDir  = spec.KindDir
)

// Option configures New.
type Option = atomfs.Option

// WithMonitor attaches a CRL-H monitor to the file system.
func WithMonitor(m *Monitor) Option { return atomfs.WithMonitor(m) }

// WithBlocks sizes the ramdisk in 4 KiB blocks.
func WithBlocks(n int) Option { return atomfs.WithBlocks(n) }

// WithFastPath enables the lockless read fast path: Stat, Read, and
// Readdir attempt a seqlock-validated no-lock traversal and fall back to
// lock coupling on conflict (see DESIGN.md §7).
func WithFastPath() Option { return atomfs.WithFastPath() }

// WithPrefixCache enables the write-path prefix cache: mutations start
// lock coupling at the deepest cached ancestor whose stamped detach
// generations validate under its lock, falling back to the root walk on
// any mismatch (see DESIGN.md §11).
func WithPrefixCache() Option { return atomfs.WithPrefixCache() }

// WithEpoch enables wait-free reads via epoch-based reclamation: Stat,
// Read, and Readdir pin a reader epoch, walk with no locks and a single
// terminal seqlock check (never spinning against writers), and unlinked
// nodes are freed only after two grace periods (see DESIGN.md §12).
// Implies the fast path.
func WithEpoch() Option { return atomfs.WithEpoch() }

// WithJournal attaches a durable write-ahead operation journal: the
// monitor appends every mutating Aop at its LP commit point, operations
// block on group-commit durability before returning, and wal.Recover
// replays the committed prefix after a crash (see DESIGN.md §14).
// Requires WithMonitor.
func WithJournal(l *wal.Log) Option { return atomfs.WithJournal(l) }

// EpochStats is a point-in-time snapshot of the reclamation domain:
// epoch, pins, retired/freed counts, advances, and stalls.
type EpochStats = epoch.Stats

// Registry is a lock-free metrics registry plus flight recorder; see
// DESIGN.md §8 and the internal/obs package documentation.
type Registry = obs.Registry

// NewObsRegistry creates an empty metrics registry with a flight
// recorder, for use with WithObs and Monitor's MonitorConfig.Obs.
func NewObsRegistry() *Registry { return obs.NewRegistry() }

// WithObs instruments the file system into reg: per-op counters and
// latency histograms, lock wait/hold times, fast-path outcome counters,
// and sampled flight-recorder events (see DESIGN.md §8).
func WithObs(reg *Registry) Option { return atomfs.WithObs(reg) }

// HookEvent describes an instrumentation-point firing inside AtomFS;
// HookFunc receives them on the operation's goroutine, so blocking in a
// hook pauses the operation — the mechanism behind deterministic
// interleaving demonstrations.
type (
	HookEvent = atomfs.HookEvent
	HookFunc  = atomfs.HookFunc
	HookPoint = atomfs.HookPoint
)

// Hook points.
const (
	HookLocked   = atomfs.HookLocked
	HookBeforeLP = atomfs.HookBeforeLP
	HookAfterLP  = atomfs.HookAfterLP
	HookStepped  = atomfs.HookStepped
)

// WithHook installs an instrumentation hook on AtomFS.
func WithHook(h HookFunc) Option { return atomfs.WithHook(h) }

// Op identifies a file system operation in hook events and histories.
type Op = spec.Op

// Operations.
const (
	OpMknod    = spec.OpMknod
	OpMkdir    = spec.OpMkdir
	OpRmdir    = spec.OpRmdir
	OpUnlink   = spec.OpUnlink
	OpRename   = spec.OpRename
	OpStat     = spec.OpStat
	OpRead     = spec.OpRead
	OpWrite    = spec.OpWrite
	OpTruncate = spec.OpTruncate
	OpReaddir  = spec.OpReaddir
)

// New creates an AtomFS instance: per-inode locks, lock-coupling
// traversal, linearizable operations.
func New(opts ...Option) *atomfs.FS { return atomfs.New(opts...) }

// NewBigLock creates the coarse-grained AtomFS-biglock baseline (§7.3).
func NewBigLock() *atomfs.FS { return atomfs.New(atomfs.WithBigLock()) }

// NewRetryFS creates the Linux-VFS-style traversal-retry baseline (§5.1).
func NewRetryFS() *retryfs.FS { return retryfs.New() }

// NewMemFS creates the global-RWMutex tmpfs stand-in.
func NewMemFS() *memfs.FS { return memfs.New() }

// NewSlowFS wraps a file system with the DFSCQ-overhead model used by the
// Figure-10 comparison.
func NewSlowFS(inner FS) FS { return slowfs.New(inner) }

// Monitor is the CRL-H runtime verifier: the abstract specification, the
// helper mechanism (ghost state, linearize-before relations, linothers),
// and the Table-1 invariants, all checked on live executions.
type Monitor = core.Monitor

// MonitorConfig configures a Monitor.
type MonitorConfig = core.Config

// Violation reports a broken invariant or refinement obligation.
type Violation = core.Violation

// Monitor modes.
const (
	// ModeHelpers enables the helper mechanism (the paper's CRL-H).
	ModeHelpers = core.ModeHelpers
	// ModeFixedLP disables helping; Figure 1 shows why this is too weak.
	ModeFixedLP = core.ModeFixedLP
)

// NewMonitor creates a CRL-H monitor.
func NewMonitor(cfg MonitorConfig) *Monitor { return core.NewMonitor(cfg) }

// Recorder captures concurrent histories for offline checking.
type Recorder = history.Recorder

// NewRecorder creates an empty history recorder.
func NewRecorder() *Recorder { return history.NewRecorder() }

// CheckLinearizable runs the offline linearizability checker over a
// recorded history, starting from an empty file system when init is nil.
func CheckLinearizable(init *spec.AFS, events []history.Event) (lincheck.Result, error) {
	return lincheck.Check(init, events)
}

// VFS provides file descriptors over any FS via the FD->path design of
// §5.4, including read/write-after-unlink semantics.
type VFS = vfs.VFS

// NewVFS wraps fs with a descriptor table.
func NewVFS(fs FS) *VFS { return vfs.New(fs) }

// Namespace is a sharded namespace: independent volumes stitched behind
// a longest-prefix mount table, with cross-volume rename running as the
// two-phase helped protocol between atomfs volumes (DESIGN.md §13).
type Namespace = mount.NS

// NewNamespace creates a namespace whose root is served by root. Graft
// further volumes with its Mount method before serving operations:
//
//	ns := atomfs.NewNamespace(atomfs.New())
//	_ = ns.Mount(ctx, "/vol1", atomfs.New())
func NewNamespace(root FS) *Namespace { return mount.New(root) }

// QuotaConfig is one tenant's admission budget on a Server: a token
// bucket (Rate per second, Burst capacity) plus a bound on how many of
// the tenant's requests may queue for a token at once.
type QuotaConfig = fuse.QuotaConfig

// Server dispatches the FUSE-like binary protocol to a file system, with
// optional per-tenant admission control (SetQuota) and instrumentation
// (SetObs).
type Server = fuse.Server

// NewServer creates a protocol server over fs. Use Serve for the common
// no-configuration case.
func NewServer(fs FS) *Server { return fuse.NewServer(fs) }

// Serve exposes fs over the FUSE-like binary protocol on lis, blocking
// until the listener closes.
func Serve(lis net.Listener, fs FS) error {
	return fuse.NewServer(fs).Serve(lis)
}

// Dial connects to a served file system; the client implements FS.
func Dial(addr string) (*fuse.Client, error) { return fuse.Dial(addr) }

// Mount returns an in-process client/server pair over a pipe — a
// zero-configuration "mount" for examples and tests. Close the returned
// cleanup when done.
func Mount(fs FS) (client FS, cleanup func()) {
	c, srv := fuse.Pipe(fs)
	return c, func() {
		c.Close()
		srv.Close()
	}
}
